//! Hosted apps: output codecs, the type-erased cluster host and the
//! app-id registry a wire server serves from.
//!
//! A wire server multiplexes several applications over one socket; the
//! frame header's `app` field selects which. Each registered app owns one
//! live [`Cluster`] (its own shard threads, router and balancer) plus the
//! knowledge of how to put its `Output` on the wire — the [`WireApp`]
//! codec. Type erasure happens here, at batch granularity: the per-frame
//! hot path only ever sees `Vec<Tuple>` in and counters out, so the
//! `dyn` indirection costs one virtual call per *batch*, not per tuple.

use std::collections::HashMap;

use datagen::Tuple;
use ditto_apps::{DataPartitionApp, HhdApp, HistoApp, HllApp, PageRankApp};
use ditto_core::apps::CountPerKey;
use ditto_core::DittoApp;
use ditto_ha::HaCluster;
use ditto_obs::{MetricsSnapshot, SpanEvent};
use ditto_serve::{AdmissionSnapshot, BatchId, Cluster, CompletedBatch, ServeConfig};
use sketches::{Fixed, HyperLogLog};

use crate::admission::AdmissionConfig;
use crate::frame::{put_u32, put_u64, ByteReader, FrameError, WireStats};

/// Conventional app ids used by the examples, benches and tests. The
/// protocol itself treats ids as opaque — any `u16` a registry maps is
/// valid.
pub mod app_id {
    /// Equi-width histogram ([`HistoApp`](ditto_apps::HistoApp)).
    pub const HISTO: u16 = 1;
    /// Radix partitioning ([`DataPartitionApp`](ditto_apps::DataPartitionApp)).
    pub const DP: u16 = 2;
    /// Fixed-point PageRank ([`PageRankApp`](ditto_apps::PageRankApp)).
    pub const PR: u16 = 3;
    /// HyperLogLog ([`HllApp`](ditto_apps::HllApp)).
    pub const HLL: u16 = 4;
    /// Count-min heavy hitters ([`HhdApp`](ditto_apps::HhdApp)).
    pub const HHD: u16 = 5;
    /// Per-PE tuple counter ([`CountPerKey`](ditto_core::apps::CountPerKey)).
    pub const COUNT: u16 = 6;
}

/// A [`DittoApp`] that can be served over the wire: adds a lossless output
/// codec so a `Finalize` response can carry the result to the client.
///
/// Encode/decode are inverses (`decode(encode(x)) == x`) and decoding is
/// fuzz-resistant: corrupt bytes yield [`FrameError`], never a panic.
pub trait WireApp: DittoApp + Clone + Send + 'static {
    /// Appends the encoded output to `buf`.
    fn encode_output(&self, out: &Self::Output, buf: &mut Vec<u8>);

    /// Decodes an output previously produced by
    /// [`encode_output`](Self::encode_output).
    ///
    /// # Errors
    ///
    /// [`FrameError`] on truncated or malformed bytes.
    fn decode_output(&self, bytes: &[u8]) -> Result<Self::Output, FrameError>;
}

fn encode_u64s(values: &[u64], buf: &mut Vec<u8>) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_u64(buf, v);
    }
}

fn decode_u64s(r: &mut ByteReader<'_>) -> Result<Vec<u64>, FrameError> {
    let len = r.u32()? as usize;
    r.expect_items(len, 8)?;
    (0..len).map(|_| r.u64()).collect()
}

fn encode_pairs(pairs: &[(u64, u64)], buf: &mut Vec<u8>) {
    put_u32(buf, pairs.len() as u32);
    for &(a, b) in pairs {
        put_u64(buf, a);
        put_u64(buf, b);
    }
}

fn decode_pairs(r: &mut ByteReader<'_>) -> Result<Vec<(u64, u64)>, FrameError> {
    let len = r.u32()? as usize;
    r.expect_items(len, 16)?;
    (0..len)
        .map(|_| Ok::<_, FrameError>((r.u64()?, r.u64()?)))
        .collect()
}

impl WireApp for HistoApp {
    fn encode_output(&self, out: &Vec<u64>, buf: &mut Vec<u8>) {
        encode_u64s(out, buf);
    }

    fn decode_output(&self, bytes: &[u8]) -> Result<Vec<u64>, FrameError> {
        let mut r = ByteReader::new(bytes);
        let out = decode_u64s(&mut r)?;
        r.finish()?;
        Ok(out)
    }
}

impl WireApp for CountPerKey {
    fn encode_output(&self, out: &Vec<u64>, buf: &mut Vec<u8>) {
        encode_u64s(out, buf);
    }

    fn decode_output(&self, bytes: &[u8]) -> Result<Vec<u64>, FrameError> {
        let mut r = ByteReader::new(bytes);
        let out = decode_u64s(&mut r)?;
        r.finish()?;
        Ok(out)
    }
}

impl WireApp for DataPartitionApp {
    fn encode_output(&self, out: &Vec<Vec<(u64, u64)>>, buf: &mut Vec<u8>) {
        put_u32(buf, out.len() as u32);
        for part in out {
            encode_pairs(part, buf);
        }
    }

    fn decode_output(&self, bytes: &[u8]) -> Result<Vec<Vec<(u64, u64)>>, FrameError> {
        let mut r = ByteReader::new(bytes);
        let parts = r.u32()? as usize;
        // Each partition needs at least its own length prefix.
        r.expect_items(parts, 4)?;
        let out = (0..parts)
            .map(|_| decode_pairs(&mut r))
            .collect::<Result<_, _>>()?;
        r.finish()?;
        Ok(out)
    }
}

impl WireApp for PageRankApp {
    fn encode_output(&self, out: &Vec<Fixed>, buf: &mut Vec<u8>) {
        put_u32(buf, out.len() as u32);
        for v in out {
            put_u64(buf, v.to_bits() as u64);
        }
    }

    fn decode_output(&self, bytes: &[u8]) -> Result<Vec<Fixed>, FrameError> {
        let mut r = ByteReader::new(bytes);
        let len = r.u32()? as usize;
        r.expect_items(len, 8)?;
        let out = (0..len)
            .map(|_| Ok::<_, FrameError>(Fixed::from_bits(r.u64()? as i64)))
            .collect::<Result<_, _>>()?;
        r.finish()?;
        Ok(out)
    }
}

impl WireApp for HllApp {
    fn encode_output(&self, out: &HyperLogLog, buf: &mut Vec<u8>) {
        put_u32(buf, out.precision());
        put_u32(buf, out.registers().len() as u32);
        buf.extend_from_slice(out.registers());
    }

    fn decode_output(&self, bytes: &[u8]) -> Result<HyperLogLog, FrameError> {
        let mut r = ByteReader::new(bytes);
        let precision = r.u32()?;
        if !(4..=18).contains(&precision) {
            return Err(FrameError::BadPayload("HLL precision out of range"));
        }
        let len = r.u32()? as usize;
        let mut hll = HyperLogLog::new(precision);
        if len != hll.register_count() {
            return Err(FrameError::BadPayload("HLL register count mismatch"));
        }
        let regs = r.bytes(len)?;
        for (idx, &rho) in regs.iter().enumerate() {
            hll.apply(idx, rho);
        }
        r.finish()?;
        Ok(hll)
    }
}

impl WireApp for HhdApp {
    fn encode_output(&self, out: &Vec<(u64, u64)>, buf: &mut Vec<u8>) {
        encode_pairs(out, buf);
    }

    fn decode_output(&self, bytes: &[u8]) -> Result<Vec<(u64, u64)>, FrameError> {
        let mut r = ByteReader::new(bytes);
        let out = decode_pairs(&mut r)?;
        r.finish()?;
        Ok(out)
    }
}

/// Type-erased hosted cluster: what the server's per-frame paths see. One
/// virtual call per batch; all tuple-granularity work stays inside the
/// concrete [`Cluster`].
pub(crate) trait HostedCluster: Send {
    /// Admits a batch, returning its cluster batch id.
    fn submit(&mut self, tuples: Vec<Tuple>) -> BatchId;
    /// Background upkeep between frames: the server's pump calls this every
    /// cycle so a host can run supervision (failure detection, promotion)
    /// without blocking any client. The default does nothing.
    fn maintain(&mut self) {}
    /// Live cluster-wide queue depth in tuples (non-blocking).
    fn queue_depth(&mut self) -> u64;
    /// Records a shed batch of `tuples` tuples.
    fn record_shed(&mut self, tuples: u64);
    /// Takes completion records accumulated since the last call.
    fn take_completed(&mut self) -> Vec<CompletedBatch>;
    /// Serving statistics (non-blocking).
    fn stats(&mut self) -> WireStats;
    /// The merged observability registry (synchronous shard round-trip).
    fn metrics(&mut self) -> MetricsSnapshot;
    /// Drains every span journal (shards + cluster) into one flat list.
    fn take_journal(&mut self) -> Vec<SpanEvent>;
    /// Drains every in-flight batch, returning their completion records
    /// without tearing anything down.
    fn drain(&mut self) -> Vec<CompletedBatch>;
    /// Drains, merges and finalizes the current cluster, replacing it with
    /// a fresh one; returns the final completions and the encoded output.
    fn finalize(&mut self) -> (Vec<CompletedBatch>, Vec<u8>);
    /// Terminal teardown: drains, then shuts the shard threads down.
    /// Returns the final completions and statistics.
    fn shutdown(self: Box<Self>) -> (Vec<CompletedBatch>, WireStats);
}

fn wire_stats<A: DittoApp + Clone + 'static>(cluster: &mut Cluster<A>) -> WireStats {
    wire_stats_from(cluster.admission_snapshot())
}

fn wire_stats_from(a: AdmissionSnapshot) -> WireStats {
    WireStats {
        batches_submitted: a.batches_submitted,
        batches_completed: a.batches_completed,
        batches_shed: a.batches_shed,
        tuples_submitted: a.tuples_submitted,
        tuples_completed: a.tuples_completed,
        tuples_shed: a.tuples_shed,
        queue_depth: a.queue_depth,
        queue_depth_peak: a.queue_depth_peak,
        p50_cycles: a.latency_cycles.p50,
        p99_cycles: a.latency_cycles.p99,
        p50_wall_us: a.latency_wall_us.p50,
        p99_wall_us: a.latency_wall_us.p99,
        p999_cycles: a.latency_cycles.p999,
        p999_wall_us: a.latency_wall_us.p999,
    }
}

/// The concrete host: an app instance, its serve configuration (kept so
/// `finalize` can respawn a fresh cluster) and the live cluster. `prior`
/// accumulates the counters of every finalized epoch, so lifetime
/// statistics stay monotonic across `Finalize` round-trips (latency
/// percentiles and queue depth are per-epoch and reset).
struct Host<A: WireApp> {
    app: A,
    config: ServeConfig,
    cluster: Cluster<A>,
    prior: WireStats,
}

/// Folds a finished epoch's counters under the current epoch's live view.
fn fold_stats(prior: &WireStats, cur: WireStats) -> WireStats {
    WireStats {
        batches_submitted: prior.batches_submitted + cur.batches_submitted,
        batches_completed: prior.batches_completed + cur.batches_completed,
        batches_shed: prior.batches_shed + cur.batches_shed,
        tuples_submitted: prior.tuples_submitted + cur.tuples_submitted,
        tuples_completed: prior.tuples_completed + cur.tuples_completed,
        tuples_shed: prior.tuples_shed + cur.tuples_shed,
        queue_depth: cur.queue_depth,
        queue_depth_peak: prior.queue_depth_peak.max(cur.queue_depth_peak),
        ..cur
    }
}

impl<A: WireApp> HostedCluster for Host<A> {
    fn submit(&mut self, tuples: Vec<Tuple>) -> BatchId {
        self.cluster.submit(tuples)
    }

    fn queue_depth(&mut self) -> u64 {
        self.cluster.queue_depth()
    }

    fn record_shed(&mut self, tuples: u64) {
        self.cluster.record_shed(tuples);
    }

    fn take_completed(&mut self) -> Vec<CompletedBatch> {
        self.cluster.take_completed()
    }

    fn stats(&mut self) -> WireStats {
        fold_stats(&self.prior, wire_stats(&mut self.cluster))
    }

    fn metrics(&mut self) -> MetricsSnapshot {
        self.cluster.metrics()
    }

    fn take_journal(&mut self) -> Vec<SpanEvent> {
        self.cluster.take_journal()
    }

    fn drain(&mut self) -> Vec<CompletedBatch> {
        self.cluster.drain();
        self.cluster.take_completed()
    }

    fn finalize(&mut self) -> (Vec<CompletedBatch>, Vec<u8>) {
        let fresh = Cluster::new(self.app.clone(), &self.config);
        let mut old = std::mem::replace(&mut self.cluster, fresh);
        old.drain();
        let completed = old.take_completed();
        self.prior = fold_stats(&self.prior, wire_stats(&mut old));
        let outcome = old.finish();
        let mut bytes = Vec::new();
        self.app.encode_output(&outcome.output, &mut bytes);
        (completed, bytes)
    }

    fn shutdown(self: Box<Self>) -> (Vec<CompletedBatch>, WireStats) {
        let Host {
            mut cluster, prior, ..
        } = *self;
        cluster.drain();
        let completed = cluster.take_completed();
        let stats = fold_stats(&prior, wire_stats(&mut cluster));
        let _ = cluster.finish();
        (completed, stats)
    }
}

/// A replicated host: the same surface as [`Host`], but the cluster is an
/// [`HaCluster`] — every shard shadowed by follower replicas, with the
/// pump-driven [`maintain`](HostedCluster::maintain) hook running failure
/// detection and promotion between frames. A shard thread dying mid-run is
/// invisible to connected clients beyond the recovery pause: in-flight
/// batches resolve from the promoted replica and later frames route to the
/// inheritor.
struct HaHost<A: WireApp>
where
    A::State: Clone,
{
    app: A,
    config: ServeConfig,
    replicas: usize,
    cluster: HaCluster<A>,
    prior: WireStats,
}

impl<A: WireApp> HostedCluster for HaHost<A>
where
    A::State: Clone,
{
    fn submit(&mut self, tuples: Vec<Tuple>) -> BatchId {
        self.cluster.submit(tuples)
    }

    fn maintain(&mut self) {
        self.cluster.heal();
    }

    fn queue_depth(&mut self) -> u64 {
        self.cluster.queue_depth()
    }

    fn record_shed(&mut self, tuples: u64) {
        self.cluster.record_shed(tuples);
    }

    fn take_completed(&mut self) -> Vec<CompletedBatch> {
        self.cluster.take_completed()
    }

    fn stats(&mut self) -> WireStats {
        fold_stats(
            &self.prior,
            wire_stats_from(self.cluster.admission_snapshot()),
        )
    }

    fn metrics(&mut self) -> MetricsSnapshot {
        self.cluster.metrics()
    }

    fn take_journal(&mut self) -> Vec<SpanEvent> {
        self.cluster.take_journal()
    }

    fn drain(&mut self) -> Vec<CompletedBatch> {
        self.cluster.drain();
        self.cluster.take_completed()
    }

    fn finalize(&mut self) -> (Vec<CompletedBatch>, Vec<u8>) {
        let fresh = HaCluster::new(self.app.clone(), &self.config, self.replicas);
        let mut old = std::mem::replace(&mut self.cluster, fresh);
        old.drain();
        let completed = old.take_completed();
        self.prior = fold_stats(&self.prior, wire_stats_from(old.admission_snapshot()));
        let outcome = old.finish();
        let mut bytes = Vec::new();
        self.app.encode_output(&outcome.output, &mut bytes);
        (completed, bytes)
    }

    fn shutdown(self: Box<Self>) -> (Vec<CompletedBatch>, WireStats) {
        let HaHost {
            mut cluster, prior, ..
        } = *self;
        cluster.heal();
        cluster.drain();
        let completed = cluster.take_completed();
        let stats = fold_stats(&prior, wire_stats_from(cluster.admission_snapshot()));
        let _ = cluster.finish();
        (completed, stats)
    }
}

/// The apps a wire server hosts, keyed by the frame header's app id.
///
/// # Example
///
/// ```
/// use ditto_wire::{app_id, AppRegistry};
/// use ditto_core::apps::CountPerKey;
/// use ditto_core::ArchConfig;
/// use ditto_serve::ServeConfig;
///
/// let mut registry = AppRegistry::new();
/// registry.register(
///     app_id::COUNT,
///     CountPerKey::new(4),
///     ServeConfig::new(1, ArchConfig::new(2, 4, 1)),
/// );
/// assert_eq!(registry.app_ids(), vec![app_id::COUNT]);
/// ```
#[derive(Default)]
pub struct AppRegistry {
    pub(crate) apps: HashMap<u16, Box<dyn HostedCluster>>,
    /// Per-app admission overrides; apps without an entry use the server's
    /// [`WireServerConfig`](crate::WireServerConfig) admission policy.
    pub(crate) admissions: HashMap<u16, AdmissionConfig>,
    /// Per-app auth tokens riding the frame header's former reserved bits;
    /// apps without an entry (or with token 0) accept any client.
    pub(crate) tokens: HashMap<u16, u16>,
}

impl AppRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        AppRegistry::default()
    }

    /// Registers `app` under `id`, booting its cluster (shard threads
    /// start serving immediately).
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn register<A: WireApp>(&mut self, id: u16, app: A, config: ServeConfig) -> &mut Self {
        let cluster = Cluster::new(app.clone(), &config);
        let host = Host {
            app,
            config,
            cluster,
            prior: WireStats::default(),
        };
        let prev = self.apps.insert(id, Box::new(host));
        assert!(prev.is_none(), "app id {id} registered twice");
        self
    }

    /// [`register`](Self::register) with N-way replication and automatic
    /// failure recovery: the app is hosted on an
    /// [`HaCluster`](ditto_ha::HaCluster) with `replicas` followers per
    /// shard, and the server's pump runs its supervisor between frames —
    /// a dying shard thread is promoted away without any client noticing
    /// more than the recovery pause.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn register_replicated<A: WireApp>(
        &mut self,
        id: u16,
        app: A,
        config: ServeConfig,
        replicas: usize,
    ) -> &mut Self
    where
        A::State: Clone,
    {
        let cluster = HaCluster::new(app.clone(), &config, replicas);
        let host = HaHost {
            app,
            config,
            replicas,
            cluster,
            prior: WireStats::default(),
        };
        let prev = self.apps.insert(id, Box::new(host));
        assert!(prev.is_none(), "app id {id} registered twice");
        self
    }

    /// [`register`](Self::register) with a per-app admission budget: this
    /// app's submits are evaluated against `admission` instead of the
    /// server-wide policy, so one noisy app sheds at its own watermark
    /// while the others keep serving under the default.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn register_with_admission<A: WireApp>(
        &mut self,
        id: u16,
        app: A,
        config: ServeConfig,
        admission: AdmissionConfig,
    ) -> &mut Self {
        self.register(id, app, config);
        self.admissions.insert(id, admission);
        self
    }

    /// Requires clients of app `id` to present `token` in the frame
    /// header's auth field on `Submit` and `Finalize` — per-app tenancy on
    /// the former reserved bits. A mismatch is answered with a
    /// [`BAD_TOKEN`](crate::frame::error_code::BAD_TOKEN) error frame and
    /// the connection stays usable (read-mostly requests are unaffected).
    ///
    /// # Panics
    ///
    /// Panics if `token` is zero (the wire encoding of "no token") or `id`
    /// is not registered yet.
    pub fn set_token(&mut self, id: u16, token: u16) -> &mut Self {
        assert!(token != 0, "auth token 0 means \"none\" on the wire");
        assert!(
            self.apps.contains_key(&id),
            "set_token for unregistered app id {id}"
        );
        self.tokens.insert(id, token);
        self
    }

    /// The registered ids, ascending.
    pub fn app_ids(&self) -> Vec<u16> {
        let mut ids: Vec<u16> = self.apps.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn output_codecs_roundtrip() {
        let histo = HistoApp::new(8, 4);
        let out = vec![1u64, 0, 99, u64::MAX];
        let mut buf = Vec::new();
        histo.encode_output(&out, &mut buf);
        assert_eq!(histo.decode_output(&buf).expect("roundtrip"), out);

        let dp = DataPartitionApp::new(4, 4);
        let out = vec![vec![(1u64, 2u64), (3, 4)], vec![], vec![(5, 6)]];
        let mut buf = Vec::new();
        dp.encode_output(&out, &mut buf);
        assert_eq!(dp.decode_output(&buf).expect("roundtrip"), out);

        let pr = PageRankApp::new(Arc::new(vec![Fixed::ONE; 4]), 4);
        let out = vec![Fixed::from_f64(0.25), Fixed::from_bits(-17), Fixed::ZERO];
        let mut buf = Vec::new();
        pr.encode_output(&out, &mut buf);
        assert_eq!(pr.decode_output(&buf).expect("roundtrip"), out);

        let hll_app = HllApp::new(6, 4);
        let mut hll = HyperLogLog::new(6);
        for k in 0..500u64 {
            hll.insert_hash(sketches::murmur3_u64(k, 11));
        }
        let mut buf = Vec::new();
        hll_app.encode_output(&hll, &mut buf);
        assert_eq!(hll_app.decode_output(&buf).expect("roundtrip"), hll);

        let hhd = HhdApp::new(2, 64, 10, 4);
        let out = vec![(7u64, 42u64), (1, 10)];
        let mut buf = Vec::new();
        hhd.encode_output(&out, &mut buf);
        assert_eq!(hhd.decode_output(&buf).expect("roundtrip"), out);
    }

    #[test]
    fn corrupt_outputs_are_rejected_without_panic() {
        let histo = HistoApp::new(8, 4);
        assert!(histo.decode_output(&[1, 2, 3]).is_err());
        let mut buf = Vec::new();
        histo.encode_output(&vec![5u64; 3], &mut buf);
        assert!(histo.decode_output(&buf[..buf.len() - 1]).is_err());
        buf.push(0);
        assert!(histo.decode_output(&buf).is_err(), "trailing byte");

        let hll = HllApp::new(6, 4);
        let mut bad = Vec::new();
        put_u32(&mut bad, 99); // precision way out of range
        put_u32(&mut bad, 0);
        assert!(hll.decode_output(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_ids_panic() {
        let mut registry = AppRegistry::new();
        let config = ServeConfig::new(1, ditto_core::ArchConfig::new(2, 4, 1));
        registry.register(1, CountPerKey::new(4), config.clone());
        registry.register(1, CountPerKey::new(4), config);
    }
}
