//! # ditto-wire — a zero-dependency network front-end over the serve cluster
//!
//! Until now, requests could only enter [`ditto_serve`]'s sharded cluster
//! through in-process Rust calls. This crate puts the cluster behind a real
//! socket — the missing request-parse → route → respond wire loop of the
//! Memcached-over-HLS case study, with the admission-control layer a
//! skew-oblivious *service* needs to stay up under overload:
//!
//! ```text
//! clients ──TCP frames──► WireServer ──admission──► Cluster (per app id)
//!    ▲                        │   │ queue_depth ≥ watermark?
//!    └──── Done / Output ◄────┘   └──► Overloaded (load shedding)
//! ```
//!
//! * [`frame`] — the versioned, length-prefixed binary codec: requests
//!   carry an app id, an auth token and tuple payloads, responses carry
//!   batch results and latency metadata; decoding is fuzz-resistant
//!   (property-tested).
//! * [`WireServer`] — an event-driven TCP server: a core-count pool of
//!   reactor threads multiplexes every connection through hand-rolled
//!   `epoll` bindings (`poll(2)` fallback, selectable via [`Backend`]),
//!   with per-connection framed state machines, bounded write buffers
//!   that backpressure (and eventually evict) slow readers, request
//!   pipelining (responses matched by sequence number), a connection
//!   budget (`DITTO_MAX_CONNS`), a completion pump, and graceful
//!   shutdown that drains in-flight batches and flushes their responses
//!   before joining shard threads.
//! * [`AdmissionController`] — reads the cluster's live aggregated
//!   `queue_depth` before every admission; past the configured
//!   high-watermark it defers briefly, then sheds with an explicit
//!   [`Overloaded`](frame::Response::Overloaded) response instead of
//!   queueing unboundedly.
//! * [`WireClient`] / [`run_load`] — the in-process client and the
//!   open-loop qps × skew load generator driving real sockets (the
//!   `wire_bench` harness and the loopback tests build on them).
//! * [`WireApp`] — lossless output codecs for all five paper apps, so a
//!   `Finalize` round-trip proves wire-served results equal a
//!   single-engine [`run_dataset`](ditto_core::SkewObliviousPipeline::run_dataset).
//!
//! # Example
//!
//! ```
//! use ditto_wire::{app_id, AppRegistry, WireApp, WireClient, WireServer, WireServerConfig};
//! use ditto_core::apps::CountPerKey;
//! use ditto_core::ArchConfig;
//! use ditto_serve::ServeConfig;
//! use datagen::Tuple;
//!
//! // Host a counting app on an OS-assigned loopback port.
//! let app = CountPerKey::new(4);
//! let mut registry = AppRegistry::new();
//! registry.register(
//!     app_id::COUNT,
//!     app.clone(),
//!     ServeConfig::new(2, ArchConfig::new(2, 4, 1)),
//! );
//! let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).unwrap();
//!
//! // Serve a batch over the socket and read the finalized output back.
//! let mut client = WireClient::connect(server.local_addr()).unwrap();
//! let batch: Vec<Tuple> = (0..100u64).map(Tuple::from_key).collect();
//! client.submit_wait(app_id::COUNT, &batch).unwrap();
//! let output = app.decode_output(&client.finalize(app_id::COUNT).unwrap()).unwrap();
//! assert_eq!(output.iter().sum::<u64>(), 100);
//! drop(client);
//! server.shutdown();
//! ```

// `deny` rather than `forbid`: the poller's syscall shim is the one
// carved-out `#[allow(unsafe_code)]` module (see `poller::sys`); all
// other code stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod client;
mod conn;
pub mod frame;
mod poller;
mod reactor;
mod registry;
mod server;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
pub use client::{run_load, LoadGenConfig, LoadReport, WireClient, WireError};
pub use frame::{metrics_format, Frame, FrameError, FrameKind, Request, Response, WireStats};
pub use poller::Backend;
pub use registry::{app_id, AppRegistry, WireApp};
pub use server::{ShutdownReport, WireServer, WireServerConfig};
