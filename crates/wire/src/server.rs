//! The TCP server: accept loop, per-connection handler threads, the
//! completion pump and graceful shutdown.
//!
//! Modeled on the Memcached-over-HLS case study's request loop
//! (parse → route → respond), adapted to batch granularity:
//!
//! ```text
//!              ┌───────────────────────── WireServer ─────────────────────────┐
//! client ──TCP──► reader thread ── admission ──► Cluster (app 1) ◄─┐          │
//! client ──TCP──► reader thread ── admission ──► Cluster (app 2) ◄─┤ pump     │
//!    ▲               │ shed → Overloaded                           │ thread   │
//!    └── writer ◄────┴── responses ◄── completions ────────────────┘          │
//!              └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each connection gets a *reader* thread (parses frames, admits or sheds
//! batches, answers stats/finalize/ping) and a *writer* thread (serialises
//! responses from an mpsc channel back onto the socket) — so a connection
//! can keep submitting while earlier batches are still in flight
//! (pipelining), and completions for one connection never block another.
//! The *pump* thread polls every hosted cluster for completed batches and
//! routes `Done` responses to whichever connection submitted them.
//!
//! Shutdown is graceful by construction: stop admitting, drain every
//! in-flight batch, flush the resulting `Done` responses, close the
//! sockets, join the connection threads, and only then tear down the shard
//! threads (whose panics, if any, are propagated with their payloads).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ditto_obs::{
    clock, encode_snapshot, to_prometheus_text, MetricsRegistry, MetricsSnapshot, SpanEvent,
    SpanJournal, SpanStage, NO_SHARD,
};
use ditto_serve::{BatchId, CompletedBatch};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
use crate::frame::{error_code, metrics_format, Frame, FrameError, Request, Response, WireStats};
use crate::registry::{AppRegistry, HostedCluster};

/// Wire server tuning.
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// Admission control (watermark, defer policy).
    pub admission: AdmissionConfig,
    /// How often the completion pump polls the hosted clusters.
    pub pump_interval: Duration,
    /// Capacity of each app's wire-level span journal (accept/admit/shed/
    /// reply events); `0` disables buffering, counters stay exact.
    pub trace_capacity: usize,
}

impl WireServerConfig {
    /// Defaults: permissive admission, 200 µs pump, 4096-event journals.
    pub fn new() -> Self {
        WireServerConfig {
            admission: AdmissionConfig::new(),
            pump_interval: Duration::from_micros(200),
            trace_capacity: 4096,
        }
    }

    /// Sets the admission config.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the wire-level span-journal capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig::new()
    }
}

/// A response routed to one connection's writer thread.
type OutFrame = Frame;

/// Bound on a connection's queued-but-unwritten response frames. The
/// reader thread *blocks* sending into a full queue (so a client spamming
/// requests without reading responses is throttled by its own TCP window,
/// not by server memory); the completion pump instead drops the `Done` of
/// a client that let this many responses pile up unread — its batches were
/// still served and counted, it just forfeited the acks it refused to
/// read.
const RESP_QUEUE_FRAMES: usize = 4_096;

/// A live connection: the stream (kept for shutdown) plus its reader and
/// writer thread handles.
type ConnHandle = (TcpStream, JoinHandle<()>, JoinHandle<()>);

/// A connection waiting on a batch completion.
struct Waiter {
    resp: SyncSender<OutFrame>,
    app: u16,
    seq: u64,
    received: Instant,
}

/// One hosted app's serving state: the erased cluster plus the completion
/// waiters, guarded together (a batch id is only meaningful while the
/// cluster that issued it lives).
struct HostState {
    host: Box<dyn HostedCluster>,
    waiters: HashMap<BatchId, Waiter>,
    /// This app's admission budget: the registry's per-app override, or
    /// the server-wide policy.
    admission: AdmissionController,
    /// Wire-level span events (accept/admit/shed/reply).
    journal: SpanJournal,
}

impl HostState {
    /// Routes completion records to their waiting connections. Runs under
    /// the app lock, so it must never block: a full response queue (a
    /// client that stopped reading) drops that client's ack rather than
    /// stalling the app for everyone.
    fn dispatch(&mut self, completed: Vec<CompletedBatch>) {
        for batch in completed {
            let Some(w) = self.waiters.remove(&batch.id) else {
                // Completion for a batch whose connection died; drop it.
                continue;
            };
            self.journal.record(
                batch.id,
                SpanStage::Reply,
                batch.latency_cycles,
                NO_SHARD,
                batch.tuples,
            );
            let resp = Response::Done {
                tuples: batch.tuples,
                latency_cycles: batch.latency_cycles,
                wall_us: u64::try_from(w.received.elapsed().as_micros()).unwrap_or(u64::MAX),
            };
            // Full or disconnected both mean the client is not listening.
            let _ = w.resp.try_send(resp.into_frame(w.app, w.seq));
        }
    }

    /// This app's full observability snapshot: the hosted cluster's merged
    /// registry plus the wire layer's own journal counters.
    fn metrics(&mut self) -> MetricsSnapshot {
        let mut snap = self.host.metrics();
        let mut reg = MetricsRegistry::new();
        let recorded = reg.counter("ditto_wire_journal_events", "wire", "events");
        let evicted = reg.counter("ditto_wire_journal_evicted", "wire", "events");
        reg.set_counter(recorded, self.journal.recorded());
        reg.set_counter(evicted, self.journal.evicted());
        snap.merge(&reg.snapshot());
        snap
    }

    /// Drains this app's full span journal — the hosted cluster's events
    /// (queue/step/drain/merge) and the wire layer's (accept/admit/shed/
    /// reply) — stamping every event with `app`.
    fn take_journal(&mut self, app: u16) -> Vec<SpanEvent> {
        let mut events = self.host.take_journal();
        events.append(&mut self.journal.drain());
        for e in &mut events {
            e.app = app;
        }
        events
    }

    /// Fails every waiter (connection teardown path at shutdown).
    fn fail_waiters(&mut self, code: u16, message: &str) {
        for (_, w) in self.waiters.drain() {
            let resp = Response::Error {
                code,
                message: message.to_owned(),
            };
            let _ = w.resp.try_send(resp.into_frame(w.app, w.seq));
        }
    }
}

struct ServerShared {
    apps: HashMap<u16, Mutex<HostState>>,
    stopping: AtomicBool,
    connections_accepted: AtomicU64,
}

/// Final accounting returned by [`WireServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Connections the server accepted over its lifetime.
    pub connections_accepted: u64,
    /// Final per-app statistics, sorted by app id.
    pub per_app: Vec<(u16, WireStats)>,
}

/// A running wire front-end over one or more serve clusters.
///
/// Bound with [`bind`](Self::bind); stopped with
/// [`shutdown`](Self::shutdown) — always shut down explicitly: dropping
/// the handle leaves the background threads serving until process exit.
pub struct WireServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    pump_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
}

impl WireServer {
    /// Binds `addr` (use `127.0.0.1:0` to let the OS pick a port) and
    /// starts serving the registry's apps.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: AppRegistry,
        config: WireServerConfig,
    ) -> std::io::Result<WireServer> {
        // Announce DITTO_* overrides once, at the front door: a serving
        // process whose behaviour was changed by the environment should
        // say so before accepting traffic.
        ditto_obs::env::log_active();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let AppRegistry {
            apps,
            mut admissions,
        } = registry;
        let apps = apps
            .into_iter()
            .map(|(id, host)| {
                let policy = admissions
                    .remove(&id)
                    .unwrap_or_else(|| config.admission.clone());
                (
                    id,
                    Mutex::new(HostState {
                        host,
                        waiters: HashMap::new(),
                        admission: AdmissionController::new(policy),
                        journal: SpanJournal::new(config.trace_capacity),
                    }),
                )
            })
            .collect();
        let shared = Arc::new(ServerShared {
            apps,
            stopping: AtomicBool::new(false),
            connections_accepted: AtomicU64::new(0),
        });
        let conns = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("wire-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_conns))
            .expect("spawn accept thread");

        let pump_shared = Arc::clone(&shared);
        let pump_interval = config.pump_interval;
        let pump_thread = std::thread::Builder::new()
            .name("wire-pump".to_owned())
            .spawn(move || pump_loop(&pump_shared, pump_interval))
            .expect("spawn pump thread");

        Ok(WireServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            pump_thread: Some(pump_thread),
            conns,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains every hosted app's span journals — wire-level accept/admit/
    /// shed/reply events plus the cluster's queue/step/drain/merge events —
    /// stamped with their app ids. Feed the result to
    /// [`ditto_obs::chrome_trace_json`] for a `chrome://tracing` /
    /// Perfetto-loadable file.
    pub fn take_trace_events(&self) -> Vec<SpanEvent> {
        let mut ids: Vec<u16> = self.shared.apps.keys().copied().collect();
        ids.sort_unstable();
        let mut events = Vec::new();
        for id in ids {
            let state = self.shared.apps.get(&id).expect("id from keys");
            let mut st = state.lock().expect("host state poisoned");
            events.extend(st.take_journal(id));
        }
        events
    }

    /// Graceful shutdown: stop admitting, drain every in-flight batch,
    /// flush their `Done` responses, close connections, join the
    /// connection threads, then tear the shard threads down.
    ///
    /// # Panics
    ///
    /// Panics if a server or shard thread panicked (the payload is
    /// propagated into the message).
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        if let Some(t) = self.pump_thread.take() {
            t.join().expect("pump thread panicked");
        }
        // Drain every app: new submissions are already refused (stopping
        // flag), so after drain there are no in-flight batches; the
        // resulting Done frames flow through still-live writer threads.
        for state in self.shared.apps.values() {
            let mut st = state.lock().expect("host state poisoned");
            let completed = st.host.drain();
            st.dispatch(completed);
            st.fail_waiters(error_code::SHUTTING_DOWN, "server shutting down");
        }
        // Close the read side: readers see EOF and exit, dropping their
        // response senders; writers flush what is queued, then exit.
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn list poisoned"));
        for (stream, _, _) in &conns {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, reader, writer) in conns {
            reader.join().expect("connection reader panicked");
            writer.join().expect("connection writer panicked");
        }
        // Only now tear down the shard threads.
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("wire server shared state still referenced after joins"));
        let mut per_app: Vec<(u16, WireStats)> = shared
            .apps
            .into_iter()
            .map(|(id, state)| {
                let st = state.into_inner().expect("host state poisoned");
                let (_, stats) = st.host.shutdown();
                (id, stats)
            })
            .collect();
        per_app.sort_unstable_by_key(|&(id, _)| id);
        ShutdownReport {
            connections_accepted: shared.connections_accepted.load(Ordering::SeqCst),
            per_app,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conns: &Arc<Mutex<Vec<ConnHandle>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failures (fd pressure, aborted
                // handshakes) must not busy-loop.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): refuse and stop.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        shared.connections_accepted.fetch_add(1, Ordering::SeqCst);
        stream.set_nodelay(true).ok();
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel::<OutFrame>(RESP_QUEUE_FRAMES);
        let reader_shared = Arc::clone(shared);
        let reader = std::thread::Builder::new()
            .name("wire-conn-read".to_owned())
            .spawn(move || connection_loop(read_half, &reader_shared, &resp_tx))
            .expect("spawn connection reader");
        let writer = std::thread::Builder::new()
            .name("wire-conn-write".to_owned())
            .spawn(move || writer_loop(write_half, &resp_rx))
            .expect("spawn connection writer");
        let mut list = conns.lock().expect("conn list poisoned");
        // Reap connections that already ended, so a long-lived server under
        // client churn does not accumulate dead sockets and thread handles.
        let mut kept = Vec::with_capacity(list.len() + 1);
        for (stream, reader, writer) in list.drain(..) {
            if reader.is_finished() && writer.is_finished() {
                reader.join().expect("connection reader panicked");
                writer.join().expect("connection writer panicked");
            } else {
                kept.push((stream, reader, writer));
            }
        }
        *list = kept;
        list.push((stream, reader, writer));
    }
}

/// Serialises queued response frames onto the socket until every sender
/// (the reader thread and all of this connection's waiters) is gone.
fn writer_loop(stream: TcpStream, responses: &Receiver<OutFrame>) {
    let mut out = BufWriter::new(stream);
    while let Ok(frame) = responses.recv() {
        let mut bytes = frame.to_bytes();
        // Coalesce whatever else is already queued into one write burst.
        while let Ok(next) = responses.try_recv() {
            next.encode(&mut bytes);
        }
        if out.write_all(&bytes).and_then(|()| out.flush()).is_err() {
            return; // client is gone; drain-and-drop the rest
        }
    }
}

/// The per-connection request loop: parse → admit/route → respond.
fn connection_loop(stream: TcpStream, shared: &Arc<ServerShared>, resp: &SyncSender<OutFrame>) {
    let mut input = BufReader::new(stream);
    loop {
        let frame = match Frame::read_from(&mut input) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean disconnect
            Err(FrameError::Io(_)) => return,
            Err(e) => {
                // Protocol garbage: answer once, then hang up (framing is
                // lost, so nothing later on this connection is parseable).
                let resp_frame = Response::Error {
                    code: error_code::BAD_REQUEST,
                    message: e.to_string(),
                }
                .into_frame(0, 0);
                let _ = resp.send(resp_frame);
                return;
            }
        };
        let received = Instant::now();
        let request = match Request::decode(&frame) {
            Ok(request) => request,
            Err(e) => {
                let resp_frame = Response::Error {
                    code: error_code::BAD_REQUEST,
                    message: e.to_string(),
                }
                .into_frame(frame.app, frame.seq);
                let _ = resp.send(resp_frame);
                return;
            }
        };
        match request {
            Request::Ping { echo } => {
                let _ = resp.send(Response::Pong { echo }.into_frame(frame.app, frame.seq));
            }
            Request::Submit { tuples } => {
                handle_submit(shared, resp, &frame, tuples, received);
            }
            Request::Stats => {
                let reply = with_app(shared, frame.app, |st| Response::Stats(st.host.stats()));
                let _ = resp.send(reply.into_frame(frame.app, frame.seq));
            }
            Request::Finalize => {
                let reply = with_app(shared, frame.app, |st| {
                    let (completed, bytes) = st.host.finalize();
                    st.dispatch(completed);
                    Response::Output { bytes }
                });
                let _ = resp.send(reply.into_frame(frame.app, frame.seq));
            }
            Request::Metrics { format } => {
                let reply = handle_metrics(shared, frame.app, format);
                let _ = resp.send(reply.into_frame(frame.app, frame.seq));
            }
        }
    }
}

/// Serves a `Metrics` request: app id 0 merges every hosted app's registry
/// (each stamped with its `app` label); a concrete id dumps that app alone.
fn handle_metrics(shared: &ServerShared, app: u16, format: u8) -> Response {
    let snap = if app == 0 {
        let mut ids: Vec<u16> = shared.apps.keys().copied().collect();
        ids.sort_unstable();
        let mut merged = MetricsSnapshot::default();
        for id in ids {
            let state = shared.apps.get(&id).expect("id from keys");
            let mut st = state.lock().expect("host state poisoned");
            let mut snap = st.metrics();
            snap.add_label("app", id);
            merged.merge(&snap);
        }
        merged
    } else {
        match shared.apps.get(&app) {
            Some(state) => {
                let mut st = state.lock().expect("host state poisoned");
                let mut snap = st.metrics();
                snap.add_label("app", app);
                snap
            }
            None => {
                return Response::Error {
                    code: error_code::UNKNOWN_APP,
                    message: format!("no app registered under id {app}"),
                }
            }
        }
    };
    let body = match format {
        metrics_format::PROMETHEUS => to_prometheus_text(&snap).into_bytes(),
        _ => encode_snapshot(&snap),
    };
    Response::MetricsDump { format, body }
}

/// Runs `f` under the app's lock, or answers `UNKNOWN_APP`.
fn with_app(
    shared: &ServerShared,
    app: u16,
    f: impl FnOnce(&mut HostState) -> Response,
) -> Response {
    match shared.apps.get(&app) {
        Some(state) => f(&mut state.lock().expect("host state poisoned")),
        None => Response::Error {
            code: error_code::UNKNOWN_APP,
            message: format!("no app registered under id {app}"),
        },
    }
}

/// Admission for one batch: check the live queue depth against the
/// watermark, deferring briefly on a full queue, shedding past the policy.
fn handle_submit(
    shared: &ServerShared,
    resp: &SyncSender<OutFrame>,
    frame: &Frame,
    tuples: Vec<datagen::Tuple>,
    received: Instant,
) {
    let Some(state) = shared.apps.get(&frame.app) else {
        let reply = Response::Error {
            code: error_code::UNKNOWN_APP,
            message: format!("no app registered under id {}", frame.app),
        };
        let _ = resp.send(reply.into_frame(frame.app, frame.seq));
        return;
    };
    let n_tuples = tuples.len() as u64;
    let mut attempt = 0u32;
    let mut batch = Some(tuples);
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            let reply = Response::Error {
                code: error_code::SHUTTING_DOWN,
                message: "server shutting down".to_owned(),
            };
            let _ = resp.send(reply.into_frame(frame.app, frame.seq));
            return;
        }
        let defer_wait = {
            let mut st = state.lock().expect("host state poisoned");
            // Re-check under the lock: shutdown fails all waiters while
            // holding it, so a submit that slips past the flag check above
            // must not insert a waiter nobody will ever complete.
            if shared.stopping.load(Ordering::SeqCst) {
                let reply = Response::Error {
                    code: error_code::SHUTTING_DOWN,
                    message: "server shutting down".to_owned(),
                };
                let _ = resp.send(reply.into_frame(frame.app, frame.seq));
                return;
            }
            let depth = st.host.queue_depth();
            match st.admission.evaluate(depth, attempt) {
                AdmissionDecision::Admit => {
                    // The admit stamp is taken *before* the submit fans the
                    // batch out, so the shard's Queue event (recorded after
                    // it receives the command) can never precede it.
                    let admit_wall = clock::wall_us_now();
                    let id = st.host.submit(batch.take().expect("batch present"));
                    // Accept is back-filled with the frame-receipt instant
                    // now that admission has assigned the span id.
                    st.journal.record_at(
                        id,
                        SpanStage::Accept,
                        clock::wall_us_of(received),
                        0,
                        NO_SHARD,
                        n_tuples,
                    );
                    st.journal
                        .record_at(id, SpanStage::Admit, admit_wall, 0, NO_SHARD, n_tuples);
                    st.waiters.insert(
                        id,
                        Waiter {
                            resp: resp.clone(),
                            app: frame.app,
                            seq: frame.seq,
                            received,
                        },
                    );
                    return;
                }
                AdmissionDecision::Defer => st.admission.config().defer_wait,
                AdmissionDecision::Shed => {
                    st.host.record_shed(n_tuples);
                    // Shed batches never got a cluster id; their span is
                    // the client seq with the top bit set, which cannot
                    // collide with real batch ids.
                    let span = frame.seq | 1 << 63;
                    st.journal.record_at(
                        span,
                        SpanStage::Accept,
                        clock::wall_us_of(received),
                        0,
                        NO_SHARD,
                        n_tuples,
                    );
                    st.journal
                        .record(span, SpanStage::Shed, 0, NO_SHARD, n_tuples);
                    let reply = Response::Overloaded {
                        queue_depth: depth,
                        watermark: st.admission.config().max_queue_tuples,
                    };
                    let _ = resp.send(reply.into_frame(frame.app, frame.seq));
                    return;
                }
            }
        };
        // Defer outside the lock so the pump and other connections proceed.
        attempt += 1;
        std::thread::sleep(defer_wait);
    }
}

/// Polls every hosted cluster for completed batches and routes their
/// `Done` responses.
fn pump_loop(shared: &Arc<ServerShared>, interval: Duration) {
    while !shared.stopping.load(Ordering::SeqCst) {
        for state in shared.apps.values() {
            // Never block on a busy app (drain/finalize hold the lock for
            // long stretches); completions keep until the next tick.
            let Ok(mut st) = state.try_lock() else {
                continue;
            };
            // Host upkeep first (an HA host runs failure detection and
            // replica promotion here), so a shard death surfaces as a
            // promotion instead of stuck completions.
            st.host.maintain();
            let completed = st.host.take_completed();
            if !completed.is_empty() {
                st.dispatch(completed);
            }
        }
        std::thread::sleep(interval);
    }
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field(
                "connections_accepted",
                &self.shared.connections_accepted.load(Ordering::SeqCst),
            )
            .finish()
    }
}
