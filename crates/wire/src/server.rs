//! The TCP server: reactor threads, the completion pump / service
//! executor, and graceful shutdown.
//!
//! Modeled on the Memcached-over-HLS case study's request loop
//! (parse → route → respond), adapted to batch granularity and engineered
//! for its connection counts — I/O threads scale with cores, not sockets:
//!
//! ```text
//!            ┌─────────────────────────── WireServer ───────────────────────────┐
//! client ──┐ │  reactor 0 (accept + events) ── admission ──► Cluster (app 1) ◄┐ │
//! client ──┼TCP► reactor 1 (events)          ── admission ──► Cluster (app 2) ◄┤ │
//!  ⋮ 10k   │ │      │ parse · park · shed             pump/service thread ────┘ │
//! client ──┘ │      └── outboxes ◄─── Done/Stats/Output ──────┘                  │
//!            └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! A small fixed pool of **reactor** threads multiplexes every connection
//! through a readiness poller ([epoll or poll](crate::poller)). Each
//! connection is a framed state machine: partial reads resume across
//! events, responses accumulate in a bounded per-connection outbox, and a
//! slow client backpressures (then is disconnected) without blocking the
//! loop — so thousands of idle or slow connections cost file descriptors,
//! not threads. Submits admit (or shed) inline under a `try_lock`;
//! lock-holding requests (`Stats`/`Finalize`/`Metrics`) run on the pump
//! thread. The **pump** polls every hosted cluster for completed batches
//! (running HA `maintain` first) and routes `Done` frames to whichever
//! connection submitted them — pipelining across connections for free.
//!
//! Shutdown is graceful by construction: stop admitting, drain every
//! in-flight batch, flush the resulting `Done` responses from the
//! outboxes, close the sockets, join the reactors, and only then tear
//! down the shard threads (whose panics, if any, are propagated).

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ditto_obs::{
    encode_snapshot, to_prometheus_text, MetricsRegistry, MetricsSnapshot, SpanEvent, SpanJournal,
    SpanStage, NO_SHARD,
};
use ditto_serve::{BatchId, CompletedBatch};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::conn::ConnShared;
use crate::frame::{error_code, metrics_format, Response, WireStats};
use crate::poller::{deepen_backlog, Backend};
use crate::reactor::{Reactor, ReactorNotify};
use crate::registry::{AppRegistry, HostedCluster};

/// Wire server tuning.
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// Admission control (watermark, defer policy, connection budget).
    pub admission: AdmissionConfig,
    /// How often the completion pump polls the hosted clusters.
    pub pump_interval: Duration,
    /// Capacity of each app's wire-level span journal (accept/admit/shed/
    /// reply events); `0` disables buffering, counters stay exact.
    pub trace_capacity: usize,
    /// Readiness backend for the reactors. Defaults to `DITTO_WIRE_BACKEND`
    /// (`epoll` | `poll`), else the platform's best.
    pub backend: Backend,
    /// Reactor (I/O) thread count; `0` (the default) auto-sizes to the
    /// core count capped at 8. `DITTO_WIRE_IO_THREADS` overrides both.
    pub io_threads: usize,
    /// Soft cap on a connection's queued response bytes: past it the
    /// server stops reading that connection; past 4× it the connection is
    /// disconnected as a slow reader.
    pub write_buf_bytes: usize,
    /// How long shutdown keeps flushing outboxes toward clients that are
    /// still reading before force-closing the rest.
    pub drain_timeout: Duration,
}

impl WireServerConfig {
    /// Defaults: permissive admission, 200 µs pump, 4096-event journals,
    /// environment-selected backend, auto-sized reactor pool, 4 MiB
    /// outbox soft cap, 10 s drain.
    pub fn new() -> Self {
        WireServerConfig {
            admission: AdmissionConfig::new(),
            pump_interval: Duration::from_micros(200),
            trace_capacity: 4096,
            backend: Backend::from_env(Backend::auto()),
            io_threads: 0,
            write_buf_bytes: 4 << 20,
            drain_timeout: Duration::from_secs(10),
        }
    }

    /// Sets the admission config.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the wire-level span-journal capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Pins the readiness backend (overriding `DITTO_WIRE_BACKEND`).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the reactor thread count (`0` = auto).
    pub fn with_io_threads(mut self, threads: usize) -> Self {
        self.io_threads = threads;
        self
    }

    /// Sets the per-connection outbox soft cap in bytes.
    ///
    /// # Panics
    ///
    /// Panics on zero (a server that can never respond is a bug).
    pub fn with_write_buffer(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "write buffer cap must be nonzero");
        self.write_buf_bytes = bytes;
        self
    }

    /// Sets the shutdown outbox-drain deadline.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig::new()
    }
}

/// `DITTO_WIRE_IO_THREADS`, else the configured count, else cores (≤ 8).
fn resolve_io_threads(configured: usize) -> usize {
    std::env::var("DITTO_WIRE_IO_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
}

/// A connection waiting on a batch completion.
pub(crate) struct Waiter {
    /// The submitting connection's cross-thread half.
    pub(crate) conn: Arc<ConnShared>,
    /// App id to answer under.
    pub(crate) app: u16,
    /// Client sequence number to answer under.
    pub(crate) seq: u64,
    /// Frame-receipt instant, for wall-clock latency in `Done`.
    pub(crate) received: Instant,
}

/// One hosted app's serving state: the erased cluster plus the completion
/// waiters, guarded together (a batch id is only meaningful while the
/// cluster that issued it lives).
pub(crate) struct HostState {
    pub(crate) host: Box<dyn HostedCluster>,
    pub(crate) waiters: HashMap<BatchId, Waiter>,
    /// This app's admission budget: the registry's per-app override, or
    /// the server-wide policy.
    pub(crate) admission: AdmissionController,
    /// Wire-level span events (accept/admit/shed/reply).
    pub(crate) journal: SpanJournal,
}

impl HostState {
    /// Routes completion records to their waiting connections. Runs under
    /// the app lock, so it must never block: the outbox push is bounded,
    /// and a client past its hard cap forfeits the ack it refused to read
    /// rather than stalling the app for everyone.
    pub(crate) fn dispatch(&mut self, completed: Vec<CompletedBatch>) {
        for batch in completed {
            let Some(w) = self.waiters.remove(&batch.id) else {
                // Completion for a batch whose connection died; drop it.
                continue;
            };
            self.journal.record(
                batch.id,
                SpanStage::Reply,
                batch.latency_cycles,
                NO_SHARD,
                batch.tuples,
            );
            let resp = Response::Done {
                tuples: batch.tuples,
                latency_cycles: batch.latency_cycles,
                wall_us: u64::try_from(w.received.elapsed().as_micros()).unwrap_or(u64::MAX),
            };
            // Push before decrementing: a half-closed connection closes on
            // `pending == 0 && outbox empty`, and this order guarantees it
            // sees the frame.
            let _ = w.conn.push_frame(&resp.into_frame(w.app, w.seq));
            w.conn.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// This app's full observability snapshot: the hosted cluster's merged
    /// registry plus the wire layer's own journal counters.
    fn metrics(&mut self) -> MetricsSnapshot {
        let mut snap = self.host.metrics();
        let mut reg = MetricsRegistry::new();
        let recorded = reg.counter("ditto_wire_journal_events", "wire", "events");
        let evicted = reg.counter("ditto_wire_journal_evicted", "wire", "events");
        reg.set_counter(recorded, self.journal.recorded());
        reg.set_counter(evicted, self.journal.evicted());
        snap.merge(&reg.snapshot());
        snap
    }

    /// Drains this app's full span journal — the hosted cluster's events
    /// (queue/step/drain/merge) and the wire layer's (accept/admit/shed/
    /// reply) — stamping every event with `app`.
    fn take_journal(&mut self, app: u16) -> Vec<SpanEvent> {
        let mut events = self.host.take_journal();
        events.append(&mut self.journal.drain());
        for e in &mut events {
            e.app = app;
        }
        events
    }

    /// Fails every waiter (shutdown path).
    fn fail_waiters(&mut self, code: u16, message: &str) {
        for (_, w) in self.waiters.drain() {
            let resp = Response::Error {
                code,
                message: message.to_owned(),
            };
            let _ = w.conn.push_frame(&resp.into_frame(w.app, w.seq));
            w.conn.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// A lock-holding request queued for execution off the event loop.
pub(crate) struct ServiceRequest {
    /// The requesting connection (response target; its decode is paused).
    pub(crate) conn: Arc<ConnShared>,
    /// App id from the frame header.
    pub(crate) app: u16,
    /// Client sequence number to answer under.
    pub(crate) seq: u64,
    /// Which request.
    pub(crate) kind: ServiceKind,
}

/// The lock-holding request kinds the reactors hand off.
pub(crate) enum ServiceKind {
    /// `Stats` → `Response::Stats`.
    Stats,
    /// `Finalize` → dispatch tail completions, `Response::Output`.
    Finalize,
    /// `Metrics` → `Response::MetricsDump`.
    Metrics {
        /// Requested dump format (`metrics_format`).
        format: u8,
    },
}

/// The service executor's queue; `closed` refuses late arrivals during
/// shutdown (checked under the same lock, so none are lost in between).
pub(crate) struct ServiceQueue {
    closed: bool,
    ops: VecDeque<ServiceRequest>,
}

/// Queues a service request unless the queue already closed for shutdown.
pub(crate) fn enqueue_service(shared: &ServerShared, req: ServiceRequest) -> bool {
    let mut q = shared.service.lock().expect("service queue poisoned");
    if q.closed {
        return false;
    }
    q.ops.push_back(req);
    true
}

/// Executes one service request and unblocks its connection.
fn execute_service(shared: &ServerShared, op: ServiceRequest) {
    let reply = match op.kind {
        ServiceKind::Stats => with_app(shared, op.app, |st| Response::Stats(st.host.stats())),
        ServiceKind::Finalize => with_app(shared, op.app, |st| {
            let (completed, bytes) = st.host.finalize();
            st.dispatch(completed);
            Response::Output { bytes }
        }),
        ServiceKind::Metrics { format } => handle_metrics(shared, op.app, format),
    };
    let _ = op.conn.push_frame(&reply.into_frame(op.app, op.seq));
    op.conn.service_blocked.store(false, Ordering::Release);
    // The push already rang the doorbell, but ring again in case the push
    // was refused: the lifted pause alone must reach the reactor.
    op.conn.notify.mark_dirty(op.conn.token);
}

/// State shared by the reactors, the pump, and the shutdown path.
pub(crate) struct ServerShared {
    pub(crate) apps: HashMap<u16, Mutex<HostState>>,
    /// Per-app auth tokens (absent or 0 = open access).
    pub(crate) tokens: HashMap<u16, u16>,
    pub(crate) stopping: AtomicBool,
    /// Set after in-flight batches drained: reactors flush and exit.
    pub(crate) draining: AtomicBool,
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) slow_disconnects: AtomicU64,
    pub(crate) connections_open: AtomicUsize,
    pub(crate) service: Mutex<ServiceQueue>,
    pub(crate) max_connections: usize,
    pub(crate) write_soft_cap: usize,
    pub(crate) write_hard_cap: usize,
}

/// Final accounting returned by [`WireServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Connections the server accepted over its lifetime.
    pub connections_accepted: u64,
    /// Connections refused over the [`AdmissionConfig::max_connections`]
    /// budget.
    pub connections_rejected: u64,
    /// Final per-app statistics, sorted by app id.
    pub per_app: Vec<(u16, WireStats)>,
}

/// A running wire front-end over one or more serve clusters.
///
/// Bound with [`bind`](Self::bind); stopped with
/// [`shutdown`](Self::shutdown) — always shut down explicitly: dropping
/// the handle leaves the background threads serving until process exit.
pub struct WireServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    notifies: Vec<Arc<ReactorNotify>>,
    reactor_threads: Vec<JoinHandle<()>>,
    pump_thread: Option<JoinHandle<()>>,
    backend: Backend,
    io_threads: usize,
}

impl WireServer {
    /// Binds `addr` (use `127.0.0.1:0` to let the OS pick a port) and
    /// starts serving the registry's apps.
    ///
    /// # Errors
    ///
    /// Propagates socket bind, wake-pipe, and poller setup errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: AppRegistry,
        config: WireServerConfig,
    ) -> std::io::Result<WireServer> {
        // Announce DITTO_* overrides once, at the front door: a serving
        // process whose behaviour was changed by the environment should
        // say so before accepting traffic.
        ditto_obs::env::log_active();
        let listener = TcpListener::bind(addr)?;
        // std listens with a backlog of 128; a 1k-connection fan-in opens
        // sockets faster than one acceptor drains them, so deepen it.
        let _ = deepen_backlog(listener.as_raw_fd(), 1024);
        let addr = listener.local_addr()?;
        let AppRegistry {
            apps,
            mut admissions,
            tokens,
        } = registry;
        let apps: HashMap<u16, Mutex<HostState>> = apps
            .into_iter()
            .map(|(id, host)| {
                let policy = admissions
                    .remove(&id)
                    .unwrap_or_else(|| config.admission.clone());
                (
                    id,
                    Mutex::new(HostState {
                        host,
                        waiters: HashMap::new(),
                        admission: AdmissionController::new(policy),
                        journal: SpanJournal::new(config.trace_capacity),
                    }),
                )
            })
            .collect();
        let io_threads = resolve_io_threads(config.io_threads);
        let backend = config.backend;
        let shared = Arc::new(ServerShared {
            apps,
            tokens,
            stopping: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections_accepted: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            slow_disconnects: AtomicU64::new(0),
            connections_open: AtomicUsize::new(0),
            service: Mutex::new(ServiceQueue {
                closed: false,
                ops: VecDeque::new(),
            }),
            max_connections: config.admission.max_connections,
            write_soft_cap: config.write_buf_bytes,
            write_hard_cap: config.write_buf_bytes.saturating_mul(4),
        });

        let mut notifies = Vec::with_capacity(io_threads);
        let mut wake_rxs = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            notifies.push(Arc::new(ReactorNotify::new(tx)));
            wake_rxs.push(rx);
        }
        let mut listener = Some(listener);
        let mut reactor_threads = Vec::with_capacity(io_threads);
        for (index, rx) in wake_rxs.into_iter().enumerate() {
            let reactor = Reactor::new(
                index,
                Arc::clone(&shared),
                Arc::clone(&notifies[index]),
                notifies.clone(),
                rx,
                listener.take(),
                backend,
                config.drain_timeout,
            )?;
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("wire-reactor-{index}"))
                    .spawn(move || reactor.run())
                    .expect("spawn reactor thread"),
            );
        }

        let pump_shared = Arc::clone(&shared);
        let pump_interval = config.pump_interval;
        let pump_thread = std::thread::Builder::new()
            .name("wire-pump".to_owned())
            .spawn(move || pump_loop(&pump_shared, pump_interval))
            .expect("spawn pump thread");

        Ok(WireServer {
            addr,
            shared,
            notifies,
            reactor_threads,
            pump_thread: Some(pump_thread),
            backend,
            io_threads,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The readiness backend the reactors are running on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// How many reactor (I/O) threads are multiplexing connections —
    /// fixed at bind time, independent of the connection count.
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }

    /// Drains every hosted app's span journals — wire-level accept/admit/
    /// shed/reply events plus the cluster's queue/step/drain/merge events —
    /// stamped with their app ids. Feed the result to
    /// [`ditto_obs::chrome_trace_json`] for a `chrome://tracing` /
    /// Perfetto-loadable file.
    pub fn take_trace_events(&self) -> Vec<SpanEvent> {
        let mut ids: Vec<u16> = self.shared.apps.keys().copied().collect();
        ids.sort_unstable();
        let mut events = Vec::new();
        for id in ids {
            let state = self.shared.apps.get(&id).expect("id from keys");
            let mut st = state.lock().expect("host state poisoned");
            events.extend(st.take_journal(id));
        }
        events
    }

    /// Graceful shutdown: stop admitting, drain every in-flight batch,
    /// flush their `Done` responses from the per-connection outboxes,
    /// close connections, join the reactors, then tear the shard threads
    /// down.
    ///
    /// # Panics
    ///
    /// Panics if a server or shard thread panicked (the payload is
    /// propagated into the message).
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.stopping.store(true, Ordering::SeqCst);
        if let Some(t) = self.pump_thread.take() {
            t.join().expect("pump thread panicked");
        }
        // Close the service queue and run what it still holds: reactors
        // that lose the race get an explicit refusal, and no paused
        // connection is left waiting on an op nobody will execute.
        let late_ops = {
            let mut q = self.shared.service.lock().expect("service queue poisoned");
            q.closed = true;
            std::mem::take(&mut q.ops)
        };
        for op in late_ops {
            execute_service(&self.shared, op);
        }
        // Drain every app: new submissions are already refused (stopping
        // flag), so after drain there are no in-flight batches; the
        // resulting Done frames land in still-live outboxes.
        for state in self.shared.apps.values() {
            let mut st = state.lock().expect("host state poisoned");
            let completed = st.host.drain();
            st.dispatch(completed);
            st.fail_waiters(error_code::SHUTTING_DOWN, "server shutting down");
        }
        // Now every response is queued: tell the reactors to flush
        // outboxes and exit ("no Done lost"), and wake them to notice.
        self.shared.draining.store(true, Ordering::SeqCst);
        for notify in &self.notifies {
            notify.wake();
        }
        for t in self.reactor_threads.drain(..) {
            t.join().expect("reactor thread panicked");
        }
        // Only now tear down the shard threads.
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("wire server shared state still referenced after joins"));
        let mut per_app: Vec<(u16, WireStats)> = shared
            .apps
            .into_iter()
            .map(|(id, state)| {
                let st = state.into_inner().expect("host state poisoned");
                let (_, stats) = st.host.shutdown();
                (id, stats)
            })
            .collect();
        per_app.sort_unstable_by_key(|&(id, _)| id);
        ShutdownReport {
            connections_accepted: shared.connections_accepted.load(Ordering::SeqCst),
            connections_rejected: shared.connections_rejected.load(Ordering::SeqCst),
            per_app,
        }
    }
}

/// Serves a `Metrics` request: app id 0 merges every hosted app's registry
/// (each stamped with its `app` label) plus the server-wide connection
/// gauges; a concrete id dumps that app alone.
fn handle_metrics(shared: &ServerShared, app: u16, format: u8) -> Response {
    let snap = if app == 0 {
        let mut ids: Vec<u16> = shared.apps.keys().copied().collect();
        ids.sort_unstable();
        let mut merged = MetricsSnapshot::default();
        for id in ids {
            let state = shared.apps.get(&id).expect("id from keys");
            let mut st = state.lock().expect("host state poisoned");
            let mut snap = st.metrics();
            snap.add_label("app", id);
            merged.merge(&snap);
        }
        let mut reg = MetricsRegistry::new();
        let open = reg.gauge("ditto_wire_connections_open", "wire", "connections");
        let accepted = reg.counter("ditto_wire_connections_accepted", "wire", "connections");
        let rejected = reg.counter("ditto_wire_connections_rejected", "wire", "connections");
        let slow = reg.counter("ditto_wire_slow_disconnects", "wire", "connections");
        reg.set_gauge(open, shared.connections_open.load(Ordering::SeqCst) as u64);
        reg.set_counter(accepted, shared.connections_accepted.load(Ordering::SeqCst));
        reg.set_counter(rejected, shared.connections_rejected.load(Ordering::SeqCst));
        reg.set_counter(slow, shared.slow_disconnects.load(Ordering::SeqCst));
        merged.merge(&reg.snapshot());
        merged
    } else {
        match shared.apps.get(&app) {
            Some(state) => {
                let mut st = state.lock().expect("host state poisoned");
                let mut snap = st.metrics();
                snap.add_label("app", app);
                snap
            }
            None => {
                return Response::Error {
                    code: error_code::UNKNOWN_APP,
                    message: format!("no app registered under id {app}"),
                }
            }
        }
    };
    let body = match format {
        metrics_format::PROMETHEUS => to_prometheus_text(&snap).into_bytes(),
        _ => encode_snapshot(&snap),
    };
    Response::MetricsDump { format, body }
}

/// Runs `f` under the app's lock, or answers `UNKNOWN_APP`.
fn with_app(
    shared: &ServerShared,
    app: u16,
    f: impl FnOnce(&mut HostState) -> Response,
) -> Response {
    match shared.apps.get(&app) {
        Some(state) => f(&mut state.lock().expect("host state poisoned")),
        None => Response::Error {
            code: error_code::UNKNOWN_APP,
            message: format!("no app registered under id {app}"),
        },
    }
}

/// Executes queued service requests, then polls every hosted cluster for
/// completed batches and routes their `Done` responses.
fn pump_loop(shared: &Arc<ServerShared>, interval: Duration) {
    loop {
        // Service requests first: their connections' decode is paused
        // until answered, so they must not wait behind a full pump pass.
        loop {
            let op = {
                let mut q = shared.service.lock().expect("service queue poisoned");
                q.ops.pop_front()
            };
            match op {
                Some(op) => execute_service(shared, op),
                None => break,
            }
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        for state in shared.apps.values() {
            // Never block on a busy app (drain/finalize hold the lock for
            // long stretches); completions keep until the next tick.
            let Ok(mut st) = state.try_lock() else {
                continue;
            };
            // Host upkeep first (an HA host runs failure detection and
            // replica promotion here), so a shard death surfaces as a
            // promotion instead of stuck completions.
            st.host.maintain();
            let completed = st.host.take_completed();
            if !completed.is_empty() {
                st.dispatch(completed);
            }
        }
        std::thread::sleep(interval);
    }
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field("backend", &self.backend)
            .field("io_threads", &self.io_threads)
            .field(
                "connections_accepted",
                &self.shared.connections_accepted.load(Ordering::SeqCst),
            )
            .finish()
    }
}
