//! The event loop: readiness-driven I/O multiplexing for the wire server.
//!
//! One [`Reactor`] per I/O thread. Each owns a [`Poller`] (epoll or poll,
//! see [`crate::poller`]), a slab of connections, and a doorbell
//! ([`ReactorNotify`]) that other threads ring to hand it work:
//!
//! - the **completion pump** and **service executor** push response frames
//!   into a connection's outbox ([`ConnShared::push_frame`]) and mark its
//!   token dirty — the reactor flushes on its next turn;
//! - the **acceptor** (reactor 0, which owns the listener) injects freshly
//!   accepted sockets into peer reactors round-robin.
//!
//! The doorbell is a `UnixStream` pair: one byte written on the first
//! signal after a quiet period makes the poller's `wait` return, and the
//! reactor then drains the dirty/injected lists. An `AtomicBool` collapses
//! redundant wake-ups so a hot pump writes one byte per reactor turn, not
//! one per response.
//!
//! Nothing in the loop blocks: sockets are non-blocking, admission uses
//! `try_lock` and *parks* a submit (timer retry) when the app lock is
//! contended or the queue is over watermark, and lock-holding service
//! requests (`Stats`/`Finalize`/`Metrics`) are executed by the pump thread
//! off the event loop.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

use datagen::Tuple;
use ditto_obs::{clock, SpanStage, NO_SHARD};

use crate::admission::AdmissionDecision;
use crate::conn::{Conn, ConnPhase, ConnShared, OutBuf, ParkedSubmit};
use crate::frame::{error_code, Frame, FrameError, Request, Response};
use crate::poller::{new_poller, Backend, Event, Interest, Poller};
use crate::server::{enqueue_service, ServerShared, ServiceKind, ServiceRequest, Waiter};

/// Poller token of this reactor's doorbell read-half.
const TOKEN_WAKER: usize = 0;
/// Poller token of the TCP listener (reactor 0 only).
const TOKEN_LISTENER: usize = 1;
/// First connection token; slab index = token − base.
const TOKEN_BASE: usize = 2;

/// Retry delay for a submit whose app lock was momentarily contended (not
/// an admission defer — the attempt counter does not advance).
const LOCK_RETRY: Duration = Duration::from_micros(100);
/// Read chunk size per `read(2)`.
const READ_CHUNK: usize = 16 * 1024;
/// Fairness bound: chunks read from one connection per readiness event
/// (level-triggered polling re-delivers the event if more data waits).
const MAX_READ_CHUNKS: usize = 16;

/// A reactor's doorbell: how other threads hand it work.
#[derive(Debug)]
pub(crate) struct ReactorNotify {
    /// Write half of the wake pipe (the reactor polls the read half).
    wake_tx: Mutex<UnixStream>,
    /// Collapses redundant wake bytes between reactor turns.
    signaled: AtomicBool,
    /// Connection tokens with fresh outbox bytes or cleared pause flags.
    dirty: Mutex<Vec<usize>>,
    /// Accepted sockets handed over by the acceptor.
    injected: Mutex<Vec<TcpStream>>,
}

impl ReactorNotify {
    /// Wraps the write half of a reactor's wake pipe.
    pub fn new(wake_tx: UnixStream) -> Self {
        ReactorNotify {
            wake_tx: Mutex::new(wake_tx),
            signaled: AtomicBool::new(false),
            dirty: Mutex::new(Vec::new()),
            injected: Mutex::new(Vec::new()),
        }
    }

    /// Flags `token` as having pending outbox bytes (or a lifted pause)
    /// and wakes the reactor.
    pub fn mark_dirty(&self, token: usize) {
        self.dirty.lock().expect("dirty list poisoned").push(token);
        self.wake();
    }

    /// Hands an accepted socket to this reactor and wakes it.
    pub fn inject(&self, stream: TcpStream) {
        self.injected
            .lock()
            .expect("inject list poisoned")
            .push(stream);
        self.wake();
    }

    /// Makes the reactor's `wait` return (one byte per quiet period).
    pub fn wake(&self) {
        if !self.signaled.swap(true, Ordering::AcqRel) {
            let mut tx = self.wake_tx.lock().expect("wake pipe poisoned");
            // WouldBlock means unread wake bytes already queue: still woken.
            let _ = tx.write(&[1]);
        }
    }
}

/// One I/O thread's event loop state.
pub(crate) struct Reactor {
    index: usize,
    shared: Arc<ServerShared>,
    notify: Arc<ReactorNotify>,
    peers: Vec<Arc<ReactorNotify>>,
    waker_rx: UnixStream,
    listener: Option<TcpListener>,
    poller: Box<dyn Poller>,
    drain_timeout: Duration,
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Round-robin cursor for handing accepted sockets to peers.
    rr: usize,
}

impl Reactor {
    /// Builds a reactor and registers its doorbell (and listener, for the
    /// acceptor reactor) with a fresh poller.
    ///
    /// # Errors
    ///
    /// Propagates poller-creation and fd-registration failures.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        shared: Arc<ServerShared>,
        notify: Arc<ReactorNotify>,
        peers: Vec<Arc<ReactorNotify>>,
        waker_rx: UnixStream,
        listener: Option<TcpListener>,
        backend: Backend,
        drain_timeout: Duration,
    ) -> std::io::Result<Reactor> {
        let mut poller = new_poller(backend)?;
        waker_rx.set_nonblocking(true)?;
        poller.register(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            poller.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        }
        Ok(Reactor {
            index,
            shared,
            notify,
            peers,
            waker_rx,
            listener,
            poller,
            drain_timeout,
            slots: Vec::new(),
            free: Vec::new(),
            rr: 0,
        })
    }

    /// Runs the event loop until the server enters its drain phase, then
    /// flushes every outbox and exits.
    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.draining.load(Ordering::Acquire) {
                self.drain();
                return;
            }
            let timeout = self
                .next_parked_due()
                .map(|due| due.saturating_duration_since(Instant::now()));
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                panic!("wire reactor poll failed: {e}");
            }
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_WAKER => self.on_wake(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.on_conn_event(token, ev),
                }
            }
            self.retry_parked();
        }
    }

    /// Earliest parked-submit retry deadline, if any — bounds the poll
    /// timeout.
    fn next_parked_due(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flatten()
            .filter_map(|c| c.parked.as_ref().map(|p| p.due))
            .min()
    }

    /// Drains the doorbell: wake bytes, injected sockets, dirty tokens.
    fn on_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.waker_rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        // Clear before taking the lists: a signal raced in after the take
        // re-arms the byte, so it is seen next turn instead of lost.
        self.notify.signaled.store(false, Ordering::Release);
        let injected = std::mem::take(&mut *self.notify.injected.lock().expect("inject list"));
        let dirty = std::mem::take(&mut *self.notify.dirty.lock().expect("dirty list"));
        for stream in injected {
            self.adopt(stream);
        }
        for token in dirty {
            self.on_dirty(token);
        }
    }

    /// Accepts until the listener would block, enforcing the connection
    /// budget and spreading sockets round-robin over all reactors.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stopping.load(Ordering::SeqCst) {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let open = self.shared.connections_open.load(Ordering::SeqCst);
                    if open >= self.shared.max_connections {
                        self.shared
                            .connections_rejected
                            .fetch_add(1, Ordering::SeqCst);
                        reject_over_budget(stream, self.shared.max_connections);
                        continue;
                    }
                    self.shared
                        .connections_accepted
                        .fetch_add(1, Ordering::SeqCst);
                    self.shared.connections_open.fetch_add(1, Ordering::SeqCst);
                    stream.set_nodelay(true).ok();
                    let target = self.rr % self.peers.len();
                    self.rr += 1;
                    if target == self.index {
                        self.adopt(stream);
                    } else {
                        self.peers[target].inject(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient (aborted handshake, fd pressure): the next
                // readiness event retries.
                Err(_) => return,
            }
        }
    }

    /// Registers an accepted (already budget-counted) socket with this
    /// reactor.
    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.shared.connections_open.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        let token = TOKEN_BASE + idx;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.free.push(idx);
            self.shared.connections_open.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let shared = Arc::new(ConnShared {
            token,
            notify: Arc::clone(&self.notify),
            out: Mutex::new(OutBuf::default()),
            pending: AtomicU64::new(0),
            service_blocked: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            soft_cap: self.shared.write_soft_cap,
            hard_cap: self.shared.write_hard_cap,
        });
        self.slots[idx] = Some(Conn {
            stream,
            shared,
            inbuf: Vec::new(),
            inpos: 0,
            phase: ConnPhase::Open,
            parked: None,
            interest: Interest::READ,
        });
    }

    /// Handles one readiness event for a connection token.
    fn on_conn_event(&mut self, token: usize, ev: Event) {
        let Some(mut conn) = self.take_conn(token) else {
            return;
        };
        // A hangup on a connection whose read path is disabled (paused or
        // half-closed) would otherwise re-fire forever: the peer is fully
        // gone, so responses are undeliverable — close.
        if ev.hangup && (conn.phase != ConnPhase::Open || conn.paused()) {
            self.close(conn, false);
            return;
        }
        if ev.writable && flush(&mut conn).is_err() {
            self.close(conn, false);
            return;
        }
        if ev.readable && conn.phase == ConnPhase::Open {
            if let Err(_e) = read_input(&self.shared, &mut conn) {
                self.close(conn, false);
                return;
            }
        }
        self.finish(token, conn);
    }

    /// Handles a dirty mark: flush fresh outbox bytes and resume decode if
    /// a pause (service op, backpressure) was lifted.
    fn on_dirty(&mut self, token: usize) {
        let Some(mut conn) = self.take_conn(token) else {
            return;
        };
        if flush(&mut conn).is_err() {
            self.close(conn, false);
            return;
        }
        self.finish(token, conn);
    }

    /// Retries parked submits whose deadline has passed.
    fn retry_parked(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let due = matches!(
                &self.slots[idx],
                Some(conn) if matches!(&conn.parked, Some(p) if p.due <= now)
            );
            if !due {
                continue;
            }
            let mut conn = self.slots[idx].take().expect("slot checked above");
            let p = conn.parked.take().expect("parked checked above");
            conn.parked = attempt_submit(
                &self.shared,
                &conn,
                p.app,
                p.seq,
                p.tuples,
                p.attempt,
                p.received,
            );
            self.finish(TOKEN_BASE + idx, conn);
        }
    }

    /// Common tail for every per-connection path: resume buffered decode
    /// if unpaused, flush what that produced, close if terminal, and
    /// re-arm poller interest.
    fn finish(&mut self, token: usize, mut conn: Conn) {
        if conn.shared.kill.load(Ordering::Acquire) {
            self.close(conn, true);
            return;
        }
        if conn.phase != ConnPhase::Closing && !conn.paused() && conn.has_input() {
            process_input(&self.shared, &mut conn);
        }
        if conn.shared.queued_bytes() > 0 && flush(&mut conn).is_err() {
            self.close(conn, false);
            return;
        }
        if conn.shared.kill.load(Ordering::Acquire) {
            self.close(conn, true);
            return;
        }
        if should_close(&conn) {
            self.close(conn, false);
            return;
        }
        self.update_interest(&mut conn);
        self.slots[token - TOKEN_BASE] = Some(conn);
    }

    /// Takes a live connection out of its slot (present-and-owned check).
    fn take_conn(&mut self, token: usize) -> Option<Conn> {
        if token < TOKEN_BASE {
            return None;
        }
        self.slots.get_mut(token - TOKEN_BASE)?.take()
    }

    /// Re-arms poller interest if it changed: read while open and
    /// unpaused, write while the outbox has bytes.
    fn update_interest(&mut self, conn: &mut Conn) {
        let desired = Interest {
            read: conn.phase == ConnPhase::Open && !conn.paused(),
            write: conn.shared.queued_bytes() > 0,
        };
        if desired != conn.interest
            && self
                .poller
                .reregister(conn.stream.as_raw_fd(), conn.shared.token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Closes a connection: deregister, mark dead (pushes become no-ops),
    /// release its budget slot.
    fn close(&mut self, conn: Conn, slow: bool) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        conn.shared.dead.store(true, Ordering::Release);
        if slow {
            self.shared.slow_disconnects.fetch_add(1, Ordering::SeqCst);
        }
        self.shared.connections_open.fetch_sub(1, Ordering::SeqCst);
        self.free.push(conn.shared.token - TOKEN_BASE);
    }

    /// Drain phase: no more reads or accepts; flush every outbox (the
    /// already-dispatched `Done`/error frames) until empty or deadline,
    /// then close everything. The "no `Done` lost" half of graceful
    /// shutdown.
    fn drain(&mut self) {
        if let Some(l) = self.listener.take() {
            let _ = self.poller.deregister(l.as_raw_fd());
        }
        // Sockets handed over but never adopted: close and release them.
        let injected = std::mem::take(&mut *self.notify.injected.lock().expect("inject list"));
        for stream in injected {
            self.shared.connections_open.fetch_sub(1, Ordering::SeqCst);
            drop(stream);
        }
        for conn in self.slots.iter_mut().flatten() {
            if let Some(p) = conn.parked.take() {
                conn.shared.push_frame(
                    &Response::Error {
                        code: error_code::SHUTTING_DOWN,
                        message: "server shutting down".to_owned(),
                    }
                    .into_frame(p.app, p.seq),
                );
            }
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        let deadline = Instant::now() + self.drain_timeout;
        let mut events: Vec<Event> = Vec::new();
        loop {
            let mut live = 0usize;
            for idx in 0..self.slots.len() {
                let Some(mut conn) = self.slots[idx].take() else {
                    continue;
                };
                if flush(&mut conn).is_err() || conn.shared.queued_bytes() == 0 {
                    self.close(conn, false);
                    continue;
                }
                live += 1;
                // Write-only interest: EOF-readability after shutdown(Read)
                // must not spin the drain loop.
                let desired = Interest {
                    read: false,
                    write: true,
                };
                if desired != conn.interest
                    && self
                        .poller
                        .reregister(conn.stream.as_raw_fd(), conn.shared.token, desired)
                        .is_ok()
                {
                    conn.interest = desired;
                }
                self.slots[idx] = Some(conn);
            }
            if live == 0 {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                for idx in 0..self.slots.len() {
                    if let Some(conn) = self.slots[idx].take() {
                        self.close(conn, true);
                    }
                }
                return;
            }
            let wait = (deadline - now).min(Duration::from_millis(50));
            let _ = self.poller.wait(&mut events, Some(wait));
        }
    }
}

/// Refuses an over-budget connection with one explicit error frame (short
/// blocking write with a timeout; the socket was just accepted, so its
/// send buffer is empty) and closes it.
fn reject_over_budget(mut stream: TcpStream, budget: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let reply = Response::Error {
        code: error_code::TOO_MANY_CONNECTIONS,
        message: format!("connection budget exhausted ({budget} open)"),
    }
    .into_frame(0, 0);
    let _ = stream.write_all(&reply.to_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads until the socket would block (bounded per event for fairness),
/// decoding frames as they complete.
fn read_input(shared: &ServerShared, conn: &mut Conn) -> std::io::Result<()> {
    let mut buf = [0u8; READ_CHUNK];
    let mut chunks = 0;
    loop {
        if conn.phase != ConnPhase::Open || conn.paused() {
            return Ok(());
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // Half-close: the client is done submitting but still
                // reads; queued and in-flight responses flush first.
                conn.phase = ConnPhase::WriteOnly;
                return Ok(());
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&buf[..n]);
                process_input(shared, conn);
                chunks += 1;
                if chunks >= MAX_READ_CHUNKS {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Decodes and handles buffered frames until input runs short or decode
/// pauses (parked submit, service op, backpressure).
fn process_input(shared: &ServerShared, conn: &mut Conn) {
    loop {
        if conn.phase == ConnPhase::Closing || conn.paused() {
            break;
        }
        match Frame::decode(&conn.inbuf[conn.inpos..]) {
            Ok((frame, used)) => {
                conn.inpos += used;
                handle_frame(shared, conn, frame);
            }
            Err(FrameError::Truncated { .. }) => break,
            Err(e) => {
                // Protocol garbage: framing is lost, so nothing later on
                // this connection is parseable — answer once, then hang up.
                conn.shared.push_frame(
                    &Response::Error {
                        code: error_code::BAD_REQUEST,
                        message: e.to_string(),
                    }
                    .into_frame(0, 0),
                );
                conn.phase = ConnPhase::Closing;
                break;
            }
        }
    }
    conn.compact_input();
}

/// Dispatches one decoded frame: parse → authenticate → admit/route or
/// queue for the service executor.
fn handle_frame(shared: &ServerShared, conn: &mut Conn, frame: Frame) {
    let received = Instant::now();
    let request = match Request::decode(&frame) {
        Ok(request) => request,
        Err(e) => {
            conn.shared.push_frame(
                &Response::Error {
                    code: error_code::BAD_REQUEST,
                    message: e.to_string(),
                }
                .into_frame(frame.app, frame.seq),
            );
            conn.phase = ConnPhase::Closing;
            return;
        }
    };
    match request {
        Request::Ping { echo } => {
            conn.shared
                .push_frame(&Response::Pong { echo }.into_frame(frame.app, frame.seq));
        }
        Request::Submit { tuples } => {
            if !token_ok(shared, frame.app, frame.token) {
                conn.shared
                    .push_frame(&bad_token(frame.app).into_frame(frame.app, frame.seq));
                return;
            }
            conn.parked = attempt_submit(shared, conn, frame.app, frame.seq, tuples, 0, received);
        }
        Request::Stats => request_service(shared, conn, &frame, ServiceKind::Stats),
        Request::Finalize => {
            if !token_ok(shared, frame.app, frame.token) {
                conn.shared
                    .push_frame(&bad_token(frame.app).into_frame(frame.app, frame.seq));
                return;
            }
            request_service(shared, conn, &frame, ServiceKind::Finalize);
        }
        Request::Metrics { format } => {
            request_service(shared, conn, &frame, ServiceKind::Metrics { format });
        }
    }
}

/// Checks the frame's auth token against the app's registered one. Apps
/// with no token (or token 0) accept anything — tenancy is opt-in and the
/// bits were reserved-zero before, so old clients stay compatible.
fn token_ok(shared: &ServerShared, app: u16, presented: u16) -> bool {
    match shared.tokens.get(&app) {
        Some(&expected) if expected != 0 => presented == expected,
        _ => true,
    }
}

fn bad_token(app: u16) -> Response {
    Response::Error {
        code: error_code::BAD_TOKEN,
        message: format!("invalid auth token for app {app}"),
    }
}

/// Queues a lock-holding request for the pump thread's service executor
/// and pauses this connection's decode so responses keep request order.
fn request_service(shared: &ServerShared, conn: &mut Conn, frame: &Frame, kind: ServiceKind) {
    // Flag before enqueueing: the executor clears it after answering, and
    // the reverse order could leave a served connection paused forever.
    conn.shared.service_blocked.store(true, Ordering::Release);
    let req = ServiceRequest {
        conn: Arc::clone(&conn.shared),
        app: frame.app,
        seq: frame.seq,
        kind,
    };
    if !enqueue_service(shared, req) {
        conn.shared.service_blocked.store(false, Ordering::Release);
        conn.shared.push_frame(
            &Response::Error {
                code: error_code::SHUTTING_DOWN,
                message: "server shutting down".to_owned(),
            }
            .into_frame(frame.app, frame.seq),
        );
    }
}

/// One non-blocking admission attempt for a submit. Returns `Some` if the
/// submit stays parked (lock contention or admission defer) — the reactor
/// retries it at `due` without blocking the loop.
fn attempt_submit(
    shared: &ServerShared,
    conn: &Conn,
    app: u16,
    seq: u64,
    tuples: Vec<Tuple>,
    attempt: u32,
    received: Instant,
) -> Option<ParkedSubmit> {
    if shared.stopping.load(Ordering::SeqCst) {
        refuse_shutting_down(conn, app, seq);
        return None;
    }
    let Some(state) = shared.apps.get(&app) else {
        conn.shared.push_frame(
            &Response::Error {
                code: error_code::UNKNOWN_APP,
                message: format!("no app registered under id {app}"),
            }
            .into_frame(app, seq),
        );
        return None;
    };
    let mut st = match state.try_lock() {
        Ok(st) => st,
        Err(TryLockError::WouldBlock) => {
            // Contended (pump dispatch, service executor): retry shortly.
            return Some(ParkedSubmit {
                app,
                seq,
                tuples,
                attempt,
                due: Instant::now() + LOCK_RETRY,
                received,
            });
        }
        Err(TryLockError::Poisoned(e)) => panic!("host state poisoned: {e}"),
    };
    // Re-check under the lock: shutdown fails all waiters while holding
    // it, so a submit that slips past the flag check above must not
    // insert a waiter nobody will ever complete.
    if shared.stopping.load(Ordering::SeqCst) {
        drop(st);
        refuse_shutting_down(conn, app, seq);
        return None;
    }
    let n_tuples = tuples.len() as u64;
    let depth = st.host.queue_depth();
    match st.admission.evaluate(depth, attempt) {
        AdmissionDecision::Admit => {
            // The admit stamp is taken *before* the submit fans the batch
            // out, so the shard's Queue event (recorded after it receives
            // the command) can never precede it.
            let admit_wall = clock::wall_us_now();
            let id = st.host.submit(tuples);
            // Accept is back-filled with the frame-receipt instant now
            // that admission has assigned the span id.
            st.journal.record_at(
                id,
                SpanStage::Accept,
                clock::wall_us_of(received),
                0,
                NO_SHARD,
                n_tuples,
            );
            st.journal
                .record_at(id, SpanStage::Admit, admit_wall, 0, NO_SHARD, n_tuples);
            conn.shared.pending.fetch_add(1, Ordering::AcqRel);
            st.waiters.insert(
                id,
                Waiter {
                    conn: Arc::clone(&conn.shared),
                    app,
                    seq,
                    received,
                },
            );
            None
        }
        AdmissionDecision::Defer => {
            let wait = st.admission.config().defer_wait;
            drop(st);
            Some(ParkedSubmit {
                app,
                seq,
                tuples,
                attempt: attempt + 1,
                due: Instant::now() + wait,
                received,
            })
        }
        AdmissionDecision::Shed => {
            st.host.record_shed(n_tuples);
            // Shed batches never got a cluster id; their span is the
            // client seq with the top bit set, which cannot collide with
            // real batch ids.
            let span = seq | 1 << 63;
            st.journal.record_at(
                span,
                SpanStage::Accept,
                clock::wall_us_of(received),
                0,
                NO_SHARD,
                n_tuples,
            );
            st.journal
                .record(span, SpanStage::Shed, 0, NO_SHARD, n_tuples);
            let reply = Response::Overloaded {
                queue_depth: depth,
                watermark: st.admission.config().max_queue_tuples,
            };
            drop(st);
            conn.shared.push_frame(&reply.into_frame(app, seq));
            None
        }
    }
}

fn refuse_shutting_down(conn: &Conn, app: u16, seq: u64) {
    conn.shared.push_frame(
        &Response::Error {
            code: error_code::SHUTTING_DOWN,
            message: "server shutting down".to_owned(),
        }
        .into_frame(app, seq),
    );
}

/// Flushes the outbox until empty or the socket would block.
fn flush(conn: &mut Conn) -> std::io::Result<()> {
    let mut out = conn.shared.out.lock().expect("outbox poisoned");
    while out.pos < out.buf.len() {
        match conn.stream.write(&out.buf[out.pos..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => out.pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if out.pos == out.buf.len() {
        out.buf.clear();
        out.pos = 0;
    } else if out.pos > 64 * 1024 {
        // Reclaim the written prefix without stalling a slow drain.
        let pos = out.pos;
        out.buf.drain(..pos);
        out.pos = 0;
    }
    Ok(())
}

/// Whether the connection's state machine has reached its end.
fn should_close(conn: &Conn) -> bool {
    match conn.phase {
        ConnPhase::Open => false,
        ConnPhase::Closing => conn.shared.queued_bytes() == 0,
        // Order matters: `pending` and `service_blocked` are read before
        // the outbox, so a completion pushed-then-decremented elsewhere is
        // either seen as pending or as queued bytes — never missed.
        ConnPhase::WriteOnly => {
            conn.shared.pending.load(Ordering::Acquire) == 0
                && !conn.shared.service_blocked.load(Ordering::Acquire)
                && conn.parked.is_none()
                && !conn.has_input()
                && conn.shared.queued_bytes() == 0
        }
    }
}
