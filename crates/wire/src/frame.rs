//! The length-prefixed binary frame codec.
//!
//! Every message on a wire connection is one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic          0xD1 0x70
//! 2       1     version        1
//! 3       1     kind           request/response discriminant
//! 4       2     app id         u16 LE (0 for app-less kinds)
//! 6       2     auth token     u16 LE (0 = none; per-app tenancy check)
//! 8       8     seq            u64 LE, echoed verbatim in the response
//! 16      4     payload len    u32 LE, capped at MAX_PAYLOAD_BYTES
//! 20      …     payload        kind-specific body
//! ```
//!
//! All integers are little-endian. The `seq` field is what makes request
//! pipelining work: a client may have any number of requests outstanding
//! and responses may arrive out of request order (batch completions finish
//! when the slowest shard does), so every response carries its request's
//! sequence number back.
//!
//! Decoding is fuzz-resistant by construction: every read is
//! bounds-checked; on the slice path declared lengths are validated
//! against the bytes actually present *before* any allocation, and on the
//! streaming path the payload buffer grows only with bytes actually
//! received (a declared-but-never-sent 64 MiB payload pins kilobytes);
//! no input — truncated, corrupt or adversarial — panics the decoder
//! (property-tested in `tests/frame_roundtrip.rs`).

use std::fmt;
use std::io::Read;

use datagen::Tuple;

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = [0xD1, 0x70];

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 20;

/// Upper bound on a frame payload (64 MiB) — anything larger is rejected
/// before allocation.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 26;

/// Upper bound on a ping echo payload.
pub const MAX_PING_BYTES: usize = 1024;

/// Bytes one encoded tuple occupies in a `Submit` payload.
pub const TUPLE_BYTES: usize = 16;

/// Body encodings a [`Request::Metrics`] may ask for.
pub mod metrics_format {
    /// The compact binary snapshot codec (`ditto_obs::decode_snapshot`).
    pub const BINARY: u8 = 0;
    /// Prometheus text exposition format 0.0.4 (UTF-8).
    pub const PROMETHEUS: u8 = 1;
}

/// Error codes carried by [`Response::Error`].
pub mod error_code {
    /// The frame named an app id the server does not host.
    pub const UNKNOWN_APP: u16 = 1;
    /// The request frame was structurally invalid.
    pub const BAD_REQUEST: u16 = 2;
    /// The server is shutting down and no longer admits work.
    pub const SHUTTING_DOWN: u16 = 3;
    /// The server is at its connection budget (`DITTO_MAX_CONNS`) and
    /// refused the connection.
    pub const TOO_MANY_CONNECTIONS: u16 = 4;
    /// The frame's auth token does not match the app's registered token.
    pub const BAD_TOKEN: u16 = 5;
}

/// Frame discriminants. Requests use the low range, responses the high.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: admit a tuple batch.
    Submit = 0x01,
    /// Client → server: report serving statistics.
    Stats = 0x02,
    /// Client → server: drain, merge and finalize the app, return its
    /// output; a fresh cluster keeps serving afterwards.
    Finalize = 0x03,
    /// Client → server: liveness echo.
    Ping = 0x04,
    /// Client → server: dump the merged observability registry (app id 0
    /// addresses every hosted app at once).
    Metrics = 0x05,
    /// Server → client: the batch completed (result ack + latency).
    Done = 0x81,
    /// Server → client: statistics reply.
    StatsReply = 0x82,
    /// Server → client: finalized application output.
    Output = 0x83,
    /// Server → client: ping echo.
    Pong = 0x84,
    /// Server → client: observability registry dump.
    MetricsDump = 0x85,
    /// Server → client: the batch was shed by admission control.
    Overloaded = 0x90,
    /// Server → client: request failed.
    Error = 0x91,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0x01 => FrameKind::Submit,
            0x02 => FrameKind::Stats,
            0x03 => FrameKind::Finalize,
            0x04 => FrameKind::Ping,
            0x05 => FrameKind::Metrics,
            0x81 => FrameKind::Done,
            0x82 => FrameKind::StatsReply,
            0x83 => FrameKind::Output,
            0x84 => FrameKind::Pong,
            0x85 => FrameKind::MetricsDump,
            0x90 => FrameKind::Overloaded,
            0x91 => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Everything that can go wrong decoding a frame. Corrupt input yields one
/// of these — never a panic.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (includes truncation mid-frame on a
    /// reader, surfaced as `UnexpectedEof`).
    Io(std::io::Error),
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    Oversize(u32),
    /// A byte-slice decode ran out of input.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The payload did not match its kind's schema.
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Oversize(n) => write!(f, "payload of {n} bytes exceeds the frame cap"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::BadPayload(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A decoded frame: header fields plus the raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame discriminant.
    pub kind: FrameKind,
    /// App id the frame addresses (0 when the kind is app-less).
    pub app: u16,
    /// Per-app auth token (0 = none). These used to be the reserved
    /// header bits; old clients that zeroed them speak token-less frames,
    /// which apps without a registered token accept unchanged.
    pub token: u16,
    /// Request sequence number, echoed in the response.
    pub seq: u64,
    /// Kind-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Appends the encoded frame to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD_BYTES`] — an encode-side
    /// contract, since such a frame could never be decoded back.
    pub fn encode(&self, out: &mut Vec<u8>) {
        assert!(
            self.payload.len() <= MAX_PAYLOAD_BYTES,
            "frame payload exceeds the protocol cap"
        );
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&self.app.to_le_bytes());
        out.extend_from_slice(&self.token.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Size of this frame on the wire: header plus payload.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// Encodes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        self.encode(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Any structural defect — short input, bad magic/version/kind, set
    /// reserved bits, oversize or short payload — yields a [`FrameError`].
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < HEADER_BYTES {
            return Err(FrameError::Truncated {
                needed: HEADER_BYTES,
                got: buf.len(),
            });
        }
        let (kind, app, token, seq, len) = parse_header(&buf[..HEADER_BYTES])?;
        let total = HEADER_BYTES + len;
        if buf.len() < total {
            return Err(FrameError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        let payload = buf[HEADER_BYTES..total].to_vec();
        Ok((
            Frame {
                kind,
                app,
                token,
                seq,
                payload,
            },
            total,
        ))
    }

    /// Reads one frame from a blocking reader. Returns `Ok(None)` on a
    /// clean EOF at a frame boundary (the peer closed the connection).
    ///
    /// # Errors
    ///
    /// Transport errors and mid-frame EOF surface as [`FrameError::Io`];
    /// structural defects as their specific variants.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
        let mut header = [0u8; HEADER_BYTES];
        // Distinguish "no more frames" from "died mid-header".
        let mut first = [0u8; 1];
        loop {
            match r.read(&mut first) {
                Ok(0) => return Ok(None),
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        header[0] = first[0];
        r.read_exact(&mut header[1..])?;
        let (kind, app, token, seq, len) = parse_header(&header)?;
        // Grow the buffer with the bytes actually received instead of
        // allocating the declared length up front — a peer declaring a
        // 64 MiB payload and going silent pins kilobytes, not gigabytes.
        let mut payload = Vec::with_capacity(len.min(64 * 1024));
        (&mut *r).take(len as u64).read_to_end(&mut payload)?;
        if payload.len() < len {
            return Err(FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-payload",
            )));
        }
        Ok(Some(Frame {
            kind,
            app,
            token,
            seq,
            payload,
        }))
    }
}

/// Validates a 20-byte header, returning
/// `(kind, app, token, seq, payload_len)`.
fn parse_header(h: &[u8]) -> Result<(FrameKind, u16, u16, u64, usize), FrameError> {
    if h[0..2] != MAGIC {
        return Err(FrameError::BadMagic([h[0], h[1]]));
    }
    if h[2] != VERSION {
        return Err(FrameError::BadVersion(h[2]));
    }
    let kind = FrameKind::from_u8(h[3]).ok_or(FrameError::UnknownKind(h[3]))?;
    let app = u16::from_le_bytes([h[4], h[5]]);
    let token = u16::from_le_bytes([h[6], h[7]]);
    let seq = u64::from_le_bytes(h[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(h[16..20].try_into().expect("4 bytes"));
    if len as usize > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversize(len));
    }
    Ok((kind, app, token, seq, len as usize))
}

/// Bounds-checked little-endian reader over a payload slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated {
                needed: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        self.take(n)
    }

    /// Validates that a declared item count fits in the bytes actually
    /// remaining (`count * bytes_per` of them) — the pre-allocation guard
    /// against adversarial length fields.
    pub fn expect_items(&self, count: usize, bytes_per: usize) -> Result<(), FrameError> {
        let needed = count
            .checked_mul(bytes_per)
            .ok_or(FrameError::BadPayload("item count overflows"))?;
        if needed > self.remaining() {
            return Err(FrameError::Truncated {
                needed: self.pos + needed,
                got: self.buf.len(),
            });
        }
        Ok(())
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::BadPayload("trailing payload bytes"));
        }
        Ok(())
    }
}

/// Appends a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serving statistics as carried by [`Response::Stats`] — the wire view of
/// the cluster's [`AdmissionSnapshot`](ditto_serve::AdmissionSnapshot).
///
/// Batch/tuple counters are lifetime totals (the server accumulates them
/// across `Finalize` epochs); queue depth and the latency percentiles
/// describe the current epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Batches admitted so far.
    pub batches_submitted: u64,
    /// Batches fully served so far.
    pub batches_completed: u64,
    /// Batches refused by admission control.
    pub batches_shed: u64,
    /// Tuples admitted so far.
    pub tuples_submitted: u64,
    /// Tuples in completed batches.
    pub tuples_completed: u64,
    /// Tuples in shed batches.
    pub tuples_shed: u64,
    /// Tuples admitted but not yet in a completed batch.
    pub queue_depth: u64,
    /// Lifetime high-watermark of `queue_depth`.
    pub queue_depth_peak: u64,
    /// Median batch latency in simulated cycles.
    pub p50_cycles: u64,
    /// 99th-percentile batch latency in simulated cycles.
    pub p99_cycles: u64,
    /// Median batch latency in wall-clock microseconds.
    pub p50_wall_us: u64,
    /// 99th-percentile batch latency in wall-clock microseconds.
    pub p99_wall_us: u64,
    /// 99.9th-percentile batch latency in simulated cycles.
    pub p999_cycles: u64,
    /// 99.9th-percentile batch latency in wall-clock microseconds.
    pub p999_wall_us: u64,
}

impl WireStats {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.batches_submitted,
            self.batches_completed,
            self.batches_shed,
            self.tuples_submitted,
            self.tuples_completed,
            self.tuples_shed,
            self.queue_depth,
            self.queue_depth_peak,
            self.p50_cycles,
            self.p99_cycles,
            self.p50_wall_us,
            self.p99_wall_us,
            // p999 fields ride at the end so pre-p999 decoders that read a
            // fixed prefix stay layout-compatible.
            self.p999_cycles,
            self.p999_wall_us,
        ] {
            put_u64(out, v);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<WireStats, FrameError> {
        Ok(WireStats {
            batches_submitted: r.u64()?,
            batches_completed: r.u64()?,
            batches_shed: r.u64()?,
            tuples_submitted: r.u64()?,
            tuples_completed: r.u64()?,
            tuples_shed: r.u64()?,
            queue_depth: r.u64()?,
            queue_depth_peak: r.u64()?,
            p50_cycles: r.u64()?,
            p99_cycles: r.u64()?,
            p50_wall_us: r.u64()?,
            p99_wall_us: r.u64()?,
            p999_cycles: r.u64()?,
            p999_wall_us: r.u64()?,
        })
    }
}

/// A typed client → server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Admit a tuple batch to the addressed app.
    Submit {
        /// The batch contents.
        tuples: Vec<Tuple>,
    },
    /// Report the addressed app's serving statistics.
    Stats,
    /// Drain, merge and finalize the addressed app; reply with its output.
    Finalize,
    /// Liveness echo (app-less).
    Ping {
        /// Opaque bytes echoed back, at most [`MAX_PING_BYTES`].
        echo: Vec<u8>,
    },
    /// Dump the merged observability registry for the addressed app (app
    /// id 0: every hosted app, each entry labelled `app=<id>`).
    Metrics {
        /// Requested body encoding — see [`metrics_format`].
        format: u8,
    },
}

impl Request {
    /// Wraps the request into a frame addressed to `app` with sequence
    /// number `seq` and no auth token.
    pub fn into_frame(self, app: u16, seq: u64) -> Frame {
        self.into_frame_with_token(app, seq, 0)
    }

    /// [`into_frame`](Self::into_frame) carrying a per-app auth `token`
    /// on the header bits that used to be reserved.
    pub fn into_frame_with_token(self, app: u16, seq: u64, token: u16) -> Frame {
        let (kind, payload) = match self {
            Request::Submit { tuples } => {
                let mut p = Vec::with_capacity(4 + tuples.len() * TUPLE_BYTES);
                put_u32(&mut p, tuples.len() as u32);
                for t in &tuples {
                    put_u64(&mut p, t.key);
                    put_u64(&mut p, t.value);
                }
                (FrameKind::Submit, p)
            }
            Request::Stats => (FrameKind::Stats, Vec::new()),
            Request::Finalize => (FrameKind::Finalize, Vec::new()),
            Request::Ping { echo } => (FrameKind::Ping, echo),
            Request::Metrics { format } => (FrameKind::Metrics, vec![format]),
        };
        Frame {
            kind,
            app,
            token,
            seq,
            payload,
        }
    }

    /// Decodes a request from a frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] when the frame is a response kind or its
    /// payload violates the kind's schema.
    pub fn decode(frame: &Frame) -> Result<Request, FrameError> {
        let mut r = ByteReader::new(&frame.payload);
        match frame.kind {
            FrameKind::Submit => {
                let count = r.u32()? as usize;
                r.expect_items(count, TUPLE_BYTES)?;
                let mut tuples = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = r.u64()?;
                    let value = r.u64()?;
                    tuples.push(Tuple::new(key, value));
                }
                r.finish()?;
                Ok(Request::Submit { tuples })
            }
            FrameKind::Stats => {
                r.finish()?;
                Ok(Request::Stats)
            }
            FrameKind::Finalize => {
                r.finish()?;
                Ok(Request::Finalize)
            }
            FrameKind::Ping => {
                if frame.payload.len() > MAX_PING_BYTES {
                    return Err(FrameError::BadPayload("ping echo too large"));
                }
                Ok(Request::Ping {
                    echo: frame.payload.clone(),
                })
            }
            FrameKind::Metrics => {
                let format = *r.bytes(1)?.first().expect("bytes(1) yields one byte");
                if format != metrics_format::BINARY && format != metrics_format::PROMETHEUS {
                    return Err(FrameError::BadPayload("unknown metrics format"));
                }
                r.finish()?;
                Ok(Request::Metrics { format })
            }
            _ => Err(FrameError::BadPayload("response kind in request position")),
        }
    }
}

/// A typed server → client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The batch was served to completion.
    Done {
        /// Tuples the batch carried.
        tuples: u64,
        /// Admission-to-completion latency in simulated cycles (worst
        /// shard).
        latency_cycles: u64,
        /// Frame-receipt-to-completion wall latency in microseconds —
        /// includes wire, queueing and simulation time.
        wall_us: u64,
    },
    /// Serving statistics for the addressed app.
    Stats(WireStats),
    /// The finalized application output, in the app's own output encoding.
    Output {
        /// Encoded output bytes (see the `WireApp` codecs).
        bytes: Vec<u8>,
    },
    /// Ping echo.
    Pong {
        /// The request's echo bytes.
        echo: Vec<u8>,
    },
    /// The observability registry dump.
    MetricsDump {
        /// The body encoding actually used (echoes the request's).
        format: u8,
        /// Encoded body: the binary snapshot codec or Prometheus text.
        body: Vec<u8>,
    },
    /// The batch was shed by admission control and **not** served.
    Overloaded {
        /// Cluster queue depth observed at the final admission attempt.
        queue_depth: u64,
        /// The configured shed watermark.
        watermark: u64,
    },
    /// The request failed; see [`error_code`].
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Wraps the response into a frame addressed to `app`, echoing `seq`.
    pub fn into_frame(self, app: u16, seq: u64) -> Frame {
        let (kind, payload) = match self {
            Response::Done {
                tuples,
                latency_cycles,
                wall_us,
            } => {
                let mut p = Vec::with_capacity(24);
                put_u64(&mut p, tuples);
                put_u64(&mut p, latency_cycles);
                put_u64(&mut p, wall_us);
                (FrameKind::Done, p)
            }
            Response::Stats(stats) => {
                let mut p = Vec::with_capacity(96);
                stats.encode(&mut p);
                (FrameKind::StatsReply, p)
            }
            Response::Output { bytes } => (FrameKind::Output, bytes),
            Response::Pong { echo } => (FrameKind::Pong, echo),
            Response::MetricsDump { format, body } => {
                let mut p = Vec::with_capacity(1 + body.len());
                p.push(format);
                p.extend_from_slice(&body);
                (FrameKind::MetricsDump, p)
            }
            Response::Overloaded {
                queue_depth,
                watermark,
            } => {
                let mut p = Vec::with_capacity(16);
                put_u64(&mut p, queue_depth);
                put_u64(&mut p, watermark);
                (FrameKind::Overloaded, p)
            }
            Response::Error { code, message } => {
                let msg = message.as_bytes();
                let mut p = Vec::with_capacity(4 + msg.len());
                put_u16(&mut p, code);
                put_u16(&mut p, msg.len().min(u16::MAX as usize) as u16);
                p.extend_from_slice(&msg[..msg.len().min(u16::MAX as usize)]);
                (FrameKind::Error, p)
            }
        };
        Frame {
            kind,
            app,
            token: 0,
            seq,
            payload,
        }
    }

    /// Decodes a response from a frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] when the frame is a request kind or its
    /// payload violates the kind's schema.
    pub fn decode(frame: &Frame) -> Result<Response, FrameError> {
        let mut r = ByteReader::new(&frame.payload);
        match frame.kind {
            FrameKind::Done => {
                let resp = Response::Done {
                    tuples: r.u64()?,
                    latency_cycles: r.u64()?,
                    wall_us: r.u64()?,
                };
                r.finish()?;
                Ok(resp)
            }
            FrameKind::StatsReply => {
                let stats = WireStats::decode(&mut r)?;
                r.finish()?;
                Ok(Response::Stats(stats))
            }
            FrameKind::Output => Ok(Response::Output {
                bytes: frame.payload.clone(),
            }),
            FrameKind::Pong => Ok(Response::Pong {
                echo: frame.payload.clone(),
            }),
            FrameKind::MetricsDump => {
                let format = *r.bytes(1)?.first().expect("bytes(1) yields one byte");
                let body = r.bytes(r.remaining())?.to_vec();
                Ok(Response::MetricsDump { format, body })
            }
            FrameKind::Overloaded => {
                let resp = Response::Overloaded {
                    queue_depth: r.u64()?,
                    watermark: r.u64()?,
                };
                r.finish()?;
                Ok(resp)
            }
            FrameKind::Error => {
                let code = r.u16()?;
                let len = r.u16()? as usize;
                let bytes = r.bytes(len)?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| FrameError::BadPayload("error message not UTF-8"))?;
                r.finish()?;
                Ok(Response::Error { code, message })
            }
            _ => Err(FrameError::BadPayload("request kind in response position")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_stable() {
        let f = Request::Submit {
            tuples: vec![Tuple::new(7, 9)],
        }
        .into_frame(3, 0x0102_0304_0506_0708);
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), HEADER_BYTES + 4 + TUPLE_BYTES);
        assert_eq!(&bytes[0..2], &MAGIC);
        assert_eq!(bytes[2], VERSION);
        assert_eq!(bytes[3], FrameKind::Submit as u8);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 3);
        assert_eq!(&bytes[6..8], &[0, 0], "token-less frames zero bytes 6..8");
        assert_eq!(bytes[8..16], 0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[16..20].try_into().unwrap()), 20);
    }

    #[test]
    fn auth_token_rides_the_former_reserved_bits() {
        let f = Request::Finalize.into_frame_with_token(3, 9, 0xBEEF);
        let bytes = f.to_bytes();
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 0xBEEF);
        let (back, _) = Frame::decode(&bytes).expect("tokened frame decodes");
        assert_eq!(back.token, 0xBEEF);
        assert_eq!(back, f);
        // Token-less construction stays wire-identical to the pre-token
        // protocol (reserved bits were zero).
        assert_eq!(Request::Finalize.into_frame(3, 9).token, 0);
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Submit {
                tuples: vec![Tuple::new(1, 2), Tuple::new(u64::MAX, 0)],
            },
            Request::Stats,
            Request::Finalize,
            Request::Ping {
                echo: b"hello".to_vec(),
            },
            Request::Metrics {
                format: metrics_format::BINARY,
            },
            Request::Metrics {
                format: metrics_format::PROMETHEUS,
            },
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let f = req.clone().into_frame(i as u16, 1000 + i as u64);
            let (back, used) = Frame::decode(&f.to_bytes()).expect("decode");
            assert_eq!(used, f.to_bytes().len());
            assert_eq!(back, f);
            assert_eq!(Request::decode(&back).expect("typed"), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Done {
                tuples: 5,
                latency_cycles: 1234,
                wall_us: 88,
            },
            Response::Stats(WireStats {
                batches_submitted: 10,
                queue_depth_peak: 99,
                ..WireStats::default()
            }),
            Response::Output {
                bytes: vec![1, 2, 3],
            },
            Response::Pong { echo: vec![] },
            Response::MetricsDump {
                format: metrics_format::PROMETHEUS,
                body: b"# TYPE x counter\nx 1\n".to_vec(),
            },
            Response::Overloaded {
                queue_depth: 4096,
                watermark: 1024,
            },
            Response::Error {
                code: error_code::UNKNOWN_APP,
                message: "no app 9".to_owned(),
            },
        ];
        for resp in resps {
            let f = resp.clone().into_frame(2, 7);
            let (back, _) = Frame::decode(&f.to_bytes()).expect("decode");
            assert_eq!(Response::decode(&back).expect("typed"), resp);
        }
    }

    #[test]
    fn submit_count_is_validated_before_allocation() {
        // A frame whose declared tuple count wildly exceeds its payload must
        // fail cheaply.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX);
        let frame = Frame {
            kind: FrameKind::Submit,
            app: 0,
            token: 0,
            seq: 0,
            payload,
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(FrameError::Truncated { .. }) | Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn oversize_length_is_rejected() {
        let f = Request::Stats.into_frame(0, 0);
        let mut bytes = f.to_bytes();
        bytes[16..20].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversize(_))
        ));
    }

    #[test]
    fn clean_eof_yields_none() {
        let mut empty: &[u8] = &[];
        assert!(Frame::read_from(&mut empty).expect("eof ok").is_none());
        let partial = Request::Stats.into_frame(0, 0).to_bytes();
        let mut cut: &[u8] = &partial[..5];
        assert!(matches!(Frame::read_from(&mut cut), Err(FrameError::Io(_))));
    }
}
