//! Readiness multiplexing: hand-rolled `epoll` bindings with a portable
//! `poll(2)` fallback behind one [`Poller`] trait.
//!
//! The zero-dependency rule means no `libc`/`mio` crates; instead the two
//! syscall surfaces the reactor needs are declared directly against the C
//! library the Rust standard library already links on every Unix target.
//! The unsafe surface is confined to the `sys` module below: three `epoll`
//! entry points, `poll`, and `listen` (to deepen the accept backlog for
//! thousand-connection fan-in) — every wrapper validates results and
//! returns `io::Error`, so the rest of the crate stays `unsafe`-free.
//!
//! Both backends are **level-triggered**: an event fires as long as the
//! condition holds, so the reactor never needs to drain a socket to
//! "re-arm" it — a partially read connection simply fires again on the
//! next wait. Write interest is registered only while a connection has
//! queued output, keeping idle connections free for the kernel.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness backend a [`WireServer`](crate::WireServer) multiplexes
/// sockets with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll`: O(ready) wakeups, the 10k-connection path.
    Epoll,
    /// POSIX `poll(2)`: O(registered) per wait, portable fallback.
    Poll,
}

impl Backend {
    /// The best backend for the build target: `epoll` on Linux, `poll`
    /// elsewhere.
    pub fn auto() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }

    /// Resolves the `DITTO_WIRE_BACKEND` override (`epoll` / `poll`),
    /// falling back to `default`. Unknown values fall back too — a typo'd
    /// override must not take a serving process down.
    pub(crate) fn from_env(default: Backend) -> Backend {
        match std::env::var("DITTO_WIRE_BACKEND").ok().as_deref() {
            Some("epoll") => Backend::Epoll,
            Some("poll") => Backend::Poll,
            _ => default,
        }
    }

    /// Stable lower-case name (`"epoll"` / `"poll"`), as accepted by the
    /// `DITTO_WIRE_BACKEND` override and stamped into bench artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Epoll => "epoll",
            Backend::Poll => "poll",
        }
    }
}

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Readable (or peer hangup, which surfaces as readable EOF).
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

/// One readiness event, backend-agnostic.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Read readiness (includes error/hangup conditions so a dying socket
    /// is noticed by a read attempt).
    pub readable: bool,
    /// Write readiness.
    pub writable: bool,
    /// Error or peer-hangup condition. Reported even for an empty interest
    /// set — how the reactor notices a dead connection it had paused.
    pub hangup: bool,
}

/// A readiness selector the reactor can block on.
pub(crate) trait Poller: Send {
    /// Starts watching `fd` under `token` with `interest`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Replaces the interest set of an already-registered `fd`.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Stops watching `fd`. Must be called *before* the fd is closed.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Blocks until at least one event, the timeout (`None` = forever), or
    /// a signal; fills `events` (cleared first). A signal-interrupted wait
    /// returns successfully with no events.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// Builds the selector for `backend`. Asking for `epoll` off-Linux falls
/// back to `poll` (the trait surface is identical).
pub(crate) fn new_poller(backend: Backend) -> io::Result<Box<dyn Poller>> {
    match backend {
        #[cfg(target_os = "linux")]
        Backend::Epoll => Ok(Box::new(linux::EpollPoller::new()?)),
        #[cfg(not(target_os = "linux"))]
        Backend::Epoll => Ok(Box::new(PollPoller::new())),
        Backend::Poll => Ok(Box::new(PollPoller::new())),
    }
}

/// Milliseconds for the C timeout argument: `None` → -1 (infinite),
/// sub-millisecond waits round **up** so a 500 µs retry never busy-spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if d > Duration::from_millis(ms as u64) {
                ms + 1
            } else {
                ms
            };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

/// The entire unsafe surface of the crate: raw prototypes against the C
/// library `std` already links, each wrapped by a checked caller.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    /// `struct epoll_event`. On x86-64 Linux the kernel ABI packs it (the
    /// 64-bit payload sits at offset 4); other architectures use natural
    /// alignment — exactly what `repr(C)` gives.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct pollfd`, identical on every Unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`, returning the raw epoll fd.
    pub fn epoll_create() -> io::Result<RawFd> {
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// One `epoll_ctl` op; `event` is ignored by the kernel for DEL.
    pub fn epoll_control(epfd: RawFd, op: i32, fd: RawFd, mut event: EpollEvent) -> io::Result<()> {
        check(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
    }

    /// `epoll_wait` into `buf`, returning how many entries were filled.
    /// EINTR is surfaced as `Ok(0)` — the reactor just re-evaluates.
    pub fn epoll_wait_into(epfd: RawFd, buf: &mut [EpollEvent], timeout: i32) -> io::Result<usize> {
        let max = i32::try_from(buf.len()).unwrap_or(i32::MAX);
        match check(unsafe { epoll_wait(epfd, buf.as_mut_ptr(), max, timeout) }) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// `poll(2)` over `fds`, returning the number of fds with events.
    /// EINTR is surfaced as `Ok(0)`.
    pub fn poll_fds(fds: &mut [PollFd], timeout: i32) -> io::Result<usize> {
        match check(unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout) }) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Re-`listen`s an already-listening socket with a deeper `backlog`
    /// (POSIX allows repeated listen; only the backlog changes). The
    /// standard library offers no backlog control, and 10k clients
    /// connecting at once overflow its default of 128.
    pub fn deepen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
        check(unsafe { listen(fd, backlog) }).map(|_| ())
    }
}

pub(crate) use sys::deepen_backlog;

#[cfg(target_os = "linux")]
mod linux {
    use super::sys::{self, EpollEvent};
    use super::{timeout_ms, Event, Interest, Poller};
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    /// The Linux backend: one epoll instance, kernel-side interest lists,
    /// O(ready) wakeups.
    pub struct EpollPoller {
        /// Owned so dropping the poller closes the epoll fd.
        epfd: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= sys::EPOLLIN;
        }
        if interest.write {
            m |= sys::EPOLLOUT;
        }
        m
    }

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            let raw = sys::epoll_create()?;
            // SAFETY-free ownership transfer lives in the sys module's
            // allow scope; from_raw_fd here is the one place the raw fd
            // becomes owned.
            #[allow(unsafe_code)]
            let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
            Ok(EpollPoller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn raw(&self) -> RawFd {
            use std::os::fd::AsRawFd;
            self.epfd.as_raw_fd()
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            sys::epoll_control(self.raw(), sys::EPOLL_CTL_ADD, fd, ev)
        }

        fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            sys::epoll_control(self.raw(), sys::EPOLL_CTL_MOD, fd, ev)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            sys::epoll_control(
                self.raw(),
                sys::EPOLL_CTL_DEL,
                fd,
                EpollEvent { events: 0, data: 0 },
            )
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let n = sys::epoll_wait_into(self.raw(), &mut self.buf, timeout_ms(timeout))?;
            for e in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let bits = e.events;
                let token = e.data as usize;
                events.push(Event {
                    token,
                    // Error/hangup conditions surface as readability so the
                    // next read() observes EOF or the real error.
                    readable: bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    writable: bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// The portable fallback: a user-space interest list handed to `poll(2)`
/// on every wait. O(registered fds) per call — fine for hundreds of
/// connections, the reason `epoll` exists for tens of thousands.
pub(crate) struct PollPoller {
    entries: Vec<(RawFd, usize, Interest)>,
    fds: Vec<sys::PollFd>,
}

impl PollPoller {
    pub(crate) fn new() -> PollPoller {
        PollPoller {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|&(f, _, _)| f == fd)
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let at = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries[at] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let at = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries.swap_remove(at);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.fds.clear();
        for &(fd, _, interest) in &self.entries {
            let mut mask = 0i16;
            if interest.read {
                mask |= sys::POLLIN;
            }
            if interest.write {
                mask |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd,
                events: mask,
                revents: 0,
            });
        }
        let n = sys::poll_fds(&mut self.fds, timeout_ms(timeout))?;
        if n == 0 {
            return Ok(());
        }
        for (slot, &(_, token, _)) in self.fds.iter().zip(&self.entries) {
            let got = slot.revents;
            if got == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: got & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0,
                writable: got & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0,
                hangup: got & (sys::POLLERR | sys::POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn backend_cases() -> Vec<Box<dyn Poller>> {
        let mut cases: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
        if cfg!(target_os = "linux") {
            cases.push(new_poller(Backend::Epoll).expect("epoll poller"));
        }
        cases
    }

    #[test]
    fn readiness_roundtrip_on_both_backends() {
        for mut poller in backend_cases() {
            let (mut a, mut b) = UnixStream::pair().expect("socketpair");
            a.set_nonblocking(true).expect("nonblocking");
            b.set_nonblocking(true).expect("nonblocking");
            poller
                .register(a.as_raw_fd(), 7, Interest::READ)
                .expect("register");

            // Nothing to read yet: a zero timeout returns no events.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::ZERO))
                .expect("wait");
            assert!(events.is_empty(), "spurious readiness");

            // Peer writes → readable under token 7.
            b.write_all(b"x").expect("peer write");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            let mut byte = [0u8; 1];
            a.read_exact(&mut byte).expect("drain");

            // Write interest: an empty socket buffer is immediately writable.
            poller
                .reregister(
                    a.as_raw_fd(),
                    7,
                    Interest {
                        read: false,
                        write: true,
                    },
                )
                .expect("reregister");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert!(events.iter().any(|e| e.token == 7 && e.writable));

            poller.deregister(a.as_raw_fd()).expect("deregister");
            poller
                .wait(&mut events, Some(Duration::ZERO))
                .expect("wait");
            assert!(events.is_empty(), "deregistered fd still firing");
        }
    }

    #[test]
    fn peer_hangup_surfaces_as_readable() {
        for mut poller in backend_cases() {
            let (a, b) = UnixStream::pair().expect("socketpair");
            a.set_nonblocking(true).expect("nonblocking");
            poller
                .register(a.as_raw_fd(), 3, Interest::READ)
                .expect("register");
            drop(b);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 3 && e.readable),
                "hangup invisible"
            );
        }
    }

    #[test]
    fn backend_labels_and_env_parsing() {
        assert_eq!(Backend::Epoll.label(), "epoll");
        assert_eq!(Backend::Poll.label(), "poll");
        // No env set in tests: default wins.
        assert_eq!(Backend::from_env(Backend::Poll), Backend::Poll);
    }
}
