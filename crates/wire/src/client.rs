//! The client side: a pipelining [`WireClient`] plus an open-loop
//! load generator for qps × skew sweeps over real sockets.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use datagen::Tuple;
use ditto_obs::{decode_snapshot, MetricsSnapshot};
use ditto_serve::{LatencyRecorder, LatencyStats};

use crate::frame::{metrics_format, Frame, FrameError, Request, Response, WireStats};

/// Client-side failure.
#[derive(Debug)]
pub enum WireError {
    /// Transport error.
    Io(std::io::Error),
    /// Frame-level decode failure.
    Frame(FrameError),
    /// The server answered with something the operation cannot use.
    Protocol(&'static str),
    /// The server answered [`Response::Error`].
    Server {
        /// Machine-readable code (see [`crate::frame::error_code`]).
        code: u16,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Frame(e) => write!(f, "frame error: {e}"),
            WireError::Protocol(why) => write!(f, "protocol violation: {why}"),
            WireError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => WireError::Io(io),
            other => WireError::Frame(other),
        }
    }
}

/// A blocking wire connection with request pipelining.
///
/// [`submit`](Self::submit) only *sends* — any number of batches may be in
/// flight, and [`recv`](Self::recv) returns completions in whatever order
/// the cluster finishes them, matched to requests by sequence number. The
/// synchronous helpers ([`stats`](Self::stats), [`finalize`](Self::finalize),
/// [`ping`](Self::ping)) require no submissions outstanding, since they
/// pair one request with the next response of the matching kind.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_seq: u64,
    token: u16,
}

impl WireClient {
    /// Connects to a wire server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> Result<WireClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireClient {
            reader,
            writer: BufWriter::new(stream),
            next_seq: 0,
            token: 0,
        })
    }

    /// Sets the auth token stamped into every subsequent request frame —
    /// required by servers whose registry
    /// [`set_token`](crate::AppRegistry::set_token)s the target app.
    /// Token 0 (the default) means "none".
    pub fn set_token(&mut self, token: u16) {
        self.token = token;
    }

    fn send(&mut self, request: Request, app: u16) -> Result<u64, WireError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = request
            .into_frame_with_token(app, seq, self.token)
            .to_bytes();
        self.writer.write_all(&bytes)?;
        self.writer.flush()?;
        Ok(seq)
    }

    /// Sends a batch to `app` without waiting; returns the sequence number
    /// its eventual response will echo.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn submit(&mut self, app: u16, tuples: &[Tuple]) -> Result<u64, WireError> {
        self.send(
            Request::Submit {
                tuples: tuples.to_vec(),
            },
            app,
        )
    }

    /// Blocks for the next response frame: `(seq, app, response)`.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on a clean EOF (server closed while
    /// responses were expected); transport/frame errors otherwise.
    pub fn recv(&mut self) -> Result<(u64, u16, Response), WireError> {
        let frame = Frame::read_from(&mut self.reader)?
            .ok_or(WireError::Protocol("connection closed by server"))?;
        let response = Response::decode(&frame)?;
        Ok((frame.seq, frame.app, response))
    }

    /// Submits one batch and blocks until *its* response arrives (requires
    /// no other requests outstanding).
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] if an unrelated response arrives.
    pub fn submit_wait(&mut self, app: u16, tuples: &[Tuple]) -> Result<Response, WireError> {
        let seq = self.submit(app, tuples)?;
        let (got_seq, _, response) = self.recv()?;
        if got_seq != seq {
            return Err(WireError::Protocol("response for a different request"));
        }
        Ok(response)
    }

    fn expect<T>(
        &mut self,
        request: Request,
        app: u16,
        pick: impl FnOnce(Response) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let seq = self.send(request, app)?;
        let (got_seq, _, response) = self.recv()?;
        if got_seq != seq {
            return Err(WireError::Protocol("response for a different request"));
        }
        if let Response::Error { code, message } = response {
            return Err(WireError::Server { code, message });
        }
        pick(response)
    }

    /// Fetches `app`'s serving statistics.
    ///
    /// # Errors
    ///
    /// Transport, frame or server errors.
    pub fn stats(&mut self, app: u16) -> Result<WireStats, WireError> {
        self.expect(Request::Stats, app, |r| match r {
            Response::Stats(stats) => Ok(stats),
            _ => Err(WireError::Protocol("expected a stats reply")),
        })
    }

    /// Drains and finalizes `app`, returning its encoded output (decode
    /// with the matching [`WireApp`](crate::WireApp) codec).
    ///
    /// # Errors
    ///
    /// Transport, frame or server errors.
    pub fn finalize(&mut self, app: u16) -> Result<Vec<u8>, WireError> {
        self.expect(Request::Finalize, app, |r| match r {
            Response::Output { bytes } => Ok(bytes),
            _ => Err(WireError::Protocol("expected an output reply")),
        })
    }

    /// Fetches the merged observability registry for `app` (0 for every
    /// hosted app, each entry labelled `app=<id>`) as a decoded snapshot.
    ///
    /// # Errors
    ///
    /// Transport, frame or server errors; [`WireError::Frame`] if the
    /// binary body fails to decode.
    pub fn metrics(&mut self, app: u16) -> Result<MetricsSnapshot, WireError> {
        self.expect(
            Request::Metrics {
                format: metrics_format::BINARY,
            },
            app,
            |r| match r {
                Response::MetricsDump { format, body } if format == metrics_format::BINARY => {
                    decode_snapshot(&body)
                        .map_err(|_| WireError::Protocol("undecodable metrics body"))
                }
                _ => Err(WireError::Protocol("expected a binary metrics dump")),
            },
        )
    }

    /// Fetches the registry for `app` (0 for all apps) in Prometheus text
    /// exposition format.
    ///
    /// # Errors
    ///
    /// Transport, frame or server errors; [`WireError::Protocol`] on a
    /// non-UTF-8 body.
    pub fn metrics_text(&mut self, app: u16) -> Result<String, WireError> {
        self.expect(
            Request::Metrics {
                format: metrics_format::PROMETHEUS,
            },
            app,
            |r| match r {
                Response::MetricsDump { format, body } if format == metrics_format::PROMETHEUS => {
                    String::from_utf8(body)
                        .map_err(|_| WireError::Protocol("metrics text not UTF-8"))
                }
                _ => Err(WireError::Protocol("expected a text metrics dump")),
            },
        )
    }

    /// Round-trips a ping, returning the wall latency.
    ///
    /// # Errors
    ///
    /// Transport, frame or server errors.
    pub fn ping(&mut self) -> Result<Duration, WireError> {
        let t0 = Instant::now();
        self.expect(
            Request::Ping {
                echo: b"ditto".to_vec(),
            },
            0,
            |r| match r {
                Response::Pong { .. } => Ok(()),
                _ => Err(WireError::Protocol("expected a pong")),
            },
        )?;
        Ok(t0.elapsed())
    }
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

/// Open-loop load-generator tuning.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Tuples per request batch.
    pub batch_tuples: usize,
    /// Offered load in tuples/second across all connections; `None` sends
    /// as fast as the window allows.
    pub qps: Option<f64>,
    /// Per-connection cap on batches awaiting their response — bounds
    /// client-side pipelining the way a real fleet's timeouts would.
    pub max_outstanding: usize,
    /// Delay between consecutive connection openings (connection `i`
    /// connects at `i × stagger`). Zero opens all at once; high fan-in
    /// runs stagger to keep a thundering connect herd from overflowing
    /// even a deepened accept backlog.
    pub connect_stagger: Duration,
    /// Establish *every* connection before the pacing clock starts, so a
    /// paced run measures steady-state latency over a settled connection
    /// set rather than folding the connect storm into the tail. Mutually
    /// sensible with `qps`; ignores `connect_stagger`.
    pub connect_barrier: bool,
}

impl LoadGenConfig {
    /// One connection, 1 000-tuple batches, unpaced, window of 8, no
    /// connect stagger, no connect barrier.
    pub fn new() -> Self {
        LoadGenConfig {
            connections: 1,
            batch_tuples: 1_000,
            qps: None,
            max_outstanding: 8,
            connect_stagger: Duration::ZERO,
            connect_barrier: false,
        }
    }
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig::new()
    }
}

/// What one load-generation run observed — all latencies are
/// frame-receipt-to-`Done` as reported by the server, i.e. they include
/// wire time.
#[derive(Debug)]
pub struct LoadReport {
    /// Batches sent.
    pub submitted: u64,
    /// Batches acknowledged `Done`.
    pub completed: u64,
    /// Batches refused with `Overloaded`.
    pub shed: u64,
    /// Tuples in completed batches.
    pub tuples_completed: u64,
    /// Wall time from first send to last response.
    pub wall: Duration,
    /// `Done` latency distribution in wall microseconds (wire-inclusive).
    pub latency_wall_us: LatencyStats,
    /// `Done` latency distribution in simulated cycles.
    pub latency_cycles: LatencyStats,
}

impl LoadReport {
    /// Completed-batch shed ratio in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted as f64
    }

    /// Completed tuples per second of wall time.
    pub fn tuples_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.tuples_completed as f64 / self.wall.as_secs_f64()
    }
}

/// Outcome of one connection's share of a load run.
struct ConnReport {
    submitted: u64,
    completed: u64,
    shed: u64,
    tuples_completed: u64,
    wall_us: Vec<u64>,
    cycles: Vec<u64>,
}

/// Drives `data` through `app` on a wire server at `addr` as an open-loop
/// load-generation run: batches are assigned round-robin to
/// `config.connections` sockets, each pacing its own share against the
/// global schedule and keeping at most `max_outstanding` batches in
/// flight.
///
/// # Panics
///
/// Panics on connection failure or a server-side protocol violation —
/// load generation is a harness, not a library path, and a broken run
/// must be loud.
pub fn run_load(addr: SocketAddr, app: u16, data: &[Tuple], config: &LoadGenConfig) -> LoadReport {
    assert!(config.connections > 0, "need at least one connection");
    assert!(config.batch_tuples > 0, "batch size must be nonzero");
    assert!(config.max_outstanding > 0, "window must be nonzero");
    let batches: Vec<&[Tuple]> = data.chunks(config.batch_tuples).collect();
    // Behind the connect barrier, every worker thread spawns and connects
    // *before* the leader stamps the schedule's start instant — the paced
    // run then measures a settled connection set, with neither the
    // thread-spawn storm nor the connect storm folded into the tail.
    let barrier = std::sync::Barrier::new(config.connections);
    let barrier_start: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let start = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|conn| {
                let batches = &batches;
                let sync = config.connect_barrier.then_some((&barrier, &barrier_start));
                scope.spawn(move || connection_share(addr, app, batches, conn, config, start, sync))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection panicked"))
            .collect()
    });
    let wall = start.elapsed();
    let mut wall_rec = LatencyRecorder::new();
    let mut cycle_rec = LatencyRecorder::new();
    let (mut submitted, mut completed, mut shed, mut tuples_completed) = (0, 0, 0, 0);
    for r in reports {
        submitted += r.submitted;
        completed += r.completed;
        shed += r.shed;
        tuples_completed += r.tuples_completed;
        for v in r.wall_us {
            wall_rec.record(v);
        }
        for v in r.cycles {
            cycle_rec.record(v);
        }
    }
    LoadReport {
        submitted,
        completed,
        shed,
        tuples_completed,
        wall,
        latency_wall_us: wall_rec.stats(),
        latency_cycles: cycle_rec.stats(),
    }
}

/// One connection's loop: batches `conn, conn + C, conn + 2C, …`, open-loop
/// paced against the *global* schedule (batch `i` is due at
/// `start + i · B / qps`), window-capped.
fn connection_share(
    addr: SocketAddr,
    app: u16,
    batches: &[&[Tuple]],
    conn: usize,
    config: &LoadGenConfig,
    start: Instant,
    sync: Option<(&std::sync::Barrier, &std::sync::OnceLock<Instant>)>,
) -> ConnReport {
    if sync.is_none() && !config.connect_stagger.is_zero() {
        std::thread::sleep(config.connect_stagger * conn as u32);
    }
    let mut client = WireClient::connect(addr).expect("connect load connection");
    // Connect barrier: everyone is connected before the leader stamps the
    // start of the paced schedule (second wait publishes the stamp).
    let start = match sync {
        Some((barrier, cell)) => {
            if barrier.wait().is_leader() {
                cell.set(Instant::now()).expect("start stamped once");
            }
            barrier.wait();
            *cell.get().expect("leader stamped start")
        }
        None => start,
    };
    let mut report = ConnReport {
        submitted: 0,
        completed: 0,
        shed: 0,
        tuples_completed: 0,
        wall_us: Vec::new(),
        cycles: Vec::new(),
    };
    let mut outstanding = 0usize;
    let absorb = |resp: Response, report: &mut ConnReport| match resp {
        Response::Done {
            tuples,
            latency_cycles,
            wall_us,
        } => {
            report.completed += 1;
            report.tuples_completed += tuples;
            report.wall_us.push(wall_us);
            report.cycles.push(latency_cycles);
        }
        Response::Overloaded { .. } => report.shed += 1,
        other => panic!("unexpected response during load run: {other:?}"),
    };
    for (i, batch) in batches
        .iter()
        .enumerate()
        .filter(|(i, _)| i % config.connections == conn)
    {
        if let Some(rate) = config.qps {
            let due = start + Duration::from_secs_f64(i as f64 * config.batch_tuples as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        while outstanding >= config.max_outstanding {
            let (_, _, resp) = client.recv().expect("load response");
            absorb(resp, &mut report);
            outstanding -= 1;
        }
        client.submit(app, batch).expect("submit load batch");
        report.submitted += 1;
        outstanding += 1;
    }
    while outstanding > 0 {
        let (_, _, resp) = client.recv().expect("load response");
        absorb(resp, &mut report);
        outstanding -= 1;
    }
    report
}
