//! Per-connection state for the wire reactor.
//!
//! A connection is split in two:
//!
//! - [`ConnShared`] — the half visible *outside* the owning reactor thread.
//!   The completion pump and the service executor push response frames into
//!   the bounded outbox through it, and flag the reactor via the owning
//!   [`ReactorNotify`](crate::reactor::ReactorNotify). All cross-thread
//!   traffic funnels through this one `Arc`.
//! - [`Conn`] — the reactor-local half: the socket itself, the framed-read
//!   accumulator that resumes partial frames across readiness events, the
//!   lifecycle phase, and any parked (deferred) submit. Only the owning
//!   reactor thread touches it, so none of it needs locking.
//!
//! ## Backpressure
//!
//! The outbox is bounded by a *soft* and a *hard* cap. Past the soft cap the
//! reactor stops reading (and decoding) that connection — a client that
//! won't drain its responses stops being able to create more work. The hard
//! cap (4× soft) is the eviction line: it can only be crossed by completion
//! traffic for batches admitted *before* the soft cap engaged, and crossing
//! it marks the connection for disconnection rather than letting one slow
//! reader grow the server's memory without bound. A single frame always
//! fits when the outbox is empty, so no response is undeliverable merely
//! for being large (metrics dumps, finalize outputs).

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use datagen::Tuple;

use crate::frame::Frame;
use crate::poller::Interest;
use crate::reactor::ReactorNotify;

/// Outbox byte buffer: encoded frames in `buf[pos..]` await the socket.
#[derive(Debug, Default)]
pub(crate) struct OutBuf {
    /// Encoded, unsent frame bytes (prefix `..pos` already written).
    pub buf: Vec<u8>,
    /// How much of `buf` has been written to the socket.
    pub pos: usize,
}

impl OutBuf {
    /// Bytes still queued for the socket.
    pub fn queued(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// The cross-thread half of a connection: everything the completion pump
/// and service executor need to deliver a response without touching the
/// reactor's own state.
#[derive(Debug)]
pub(crate) struct ConnShared {
    /// The poller token the owning reactor registered this connection under.
    pub token: usize,
    /// The owning reactor's doorbell.
    pub notify: Arc<ReactorNotify>,
    /// Bounded write buffer; see the module docs for the cap policy.
    pub out: Mutex<OutBuf>,
    /// Batches admitted on this connection whose `Done` has not yet been
    /// pushed. A half-closed connection stays open until this drains.
    pub pending: AtomicU64,
    /// A `Stats`/`Finalize`/`Metrics` request is queued with the service
    /// executor; decode pauses so responses keep request order.
    pub service_blocked: AtomicBool,
    /// Set when the hard cap is crossed: the reactor disconnects the
    /// connection at the next opportunity.
    pub kill: AtomicBool,
    /// Set (by the reactor) once the socket is closed; pushes become no-ops.
    pub dead: AtomicBool,
    /// Soft outbox cap in bytes: past it, reads pause.
    pub soft_cap: usize,
    /// Hard outbox cap in bytes: past it, the connection is evicted.
    pub hard_cap: usize,
}

impl ConnShared {
    /// Encodes `frame` into the outbox and rings the owning reactor.
    ///
    /// Returns `false` if the frame was *not* queued: the connection is
    /// already dead, or queueing it would cross the hard cap (in which case
    /// the connection is marked for eviction). A frame of any size is
    /// accepted while the outbox is empty.
    pub fn push_frame(&self, frame: &Frame) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        {
            let mut out = self.out.lock().expect("outbox poisoned");
            let queued = out.queued();
            if queued > 0 && queued + frame.encoded_len() > self.hard_cap {
                drop(out);
                self.kill.store(true, Ordering::Release);
                self.notify.mark_dirty(self.token);
                return false;
            }
            frame.encode(&mut out.buf);
        }
        self.notify.mark_dirty(self.token);
        true
    }

    /// Bytes currently queued in the outbox.
    pub fn queued_bytes(&self) -> usize {
        self.out.lock().expect("outbox poisoned").queued()
    }
}

/// Lifecycle phase of a connection's framed state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnPhase {
    /// Reading requests and writing responses.
    Open,
    /// Client half-closed (EOF on read): no more requests, but queued and
    /// in-flight responses still flush — the "no `Done` lost" guarantee for
    /// clients that shut down their write side and then read.
    WriteOnly,
    /// A fatal protocol error was answered; closing once the outbox drains.
    Closing,
}

/// A `Submit` the admission controller deferred (or whose app lock was
/// contended): retried by the reactor's timer wheel without blocking the
/// event loop.
#[derive(Debug)]
pub(crate) struct ParkedSubmit {
    /// Target app id from the frame header.
    pub app: u16,
    /// Client sequence number to answer under.
    pub seq: u64,
    /// The decoded batch, held until admission resolves.
    pub tuples: Vec<Tuple>,
    /// Admission attempts consumed so far (lock contention does not count).
    pub attempt: u32,
    /// When to retry.
    pub due: Instant,
    /// When the frame was received, for latency accounting.
    pub received: Instant,
}

/// The reactor-local half of a connection.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The socket, in non-blocking mode.
    pub stream: TcpStream,
    /// The cross-thread half.
    pub shared: Arc<ConnShared>,
    /// Read accumulator: partial frames resume here across readiness
    /// events. `inbuf[inpos..]` is not yet decoded.
    pub inbuf: Vec<u8>,
    /// How much of `inbuf` has been decoded.
    pub inpos: usize,
    /// Lifecycle phase.
    pub phase: ConnPhase,
    /// A deferred submit awaiting its retry tick, if any.
    pub parked: Option<ParkedSubmit>,
    /// Interest currently registered with the poller (to skip no-op
    /// reregisters).
    pub interest: Interest,
}

impl Conn {
    /// Whether request decode is paused: an unresolved parked submit or
    /// in-flight service op would break per-connection response ordering,
    /// and a soft-cap outbox means the client isn't draining responses.
    pub fn paused(&self) -> bool {
        self.parked.is_some()
            || self.shared.service_blocked.load(Ordering::Acquire)
            || self.shared.queued_bytes() > self.shared.soft_cap
    }

    /// Undecoded input remains buffered.
    pub fn has_input(&self) -> bool {
        self.inpos < self.inbuf.len()
    }

    /// Reclaims decoded prefix space in the read accumulator.
    pub fn compact_input(&mut self) {
        if self.inpos == self.inbuf.len() {
            self.inbuf.clear();
            self.inpos = 0;
        } else if self.inpos > 32 * 1024 {
            self.inbuf.drain(..self.inpos);
            self.inpos = 0;
        }
    }
}
