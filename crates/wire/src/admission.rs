//! Admission control: watermark-based load shedding with optional defer.
//!
//! The serve layer's queues are unbounded by design (the cluster tracks
//! batches by watermark, not by slot), so under sustained overload an
//! unguarded front-end would queue forever and every client would see
//! unbounded latency. The wire server instead makes the decision *at the
//! socket*: before a batch is admitted, the live cluster-wide queue depth
//! ([`Cluster::queue_depth`](ditto_serve::Cluster::queue_depth), fed by the
//! per-shard `queue_depth` counters) is compared against a configurable
//! high-watermark. Past it, the batch is either *deferred* — the connection
//! handler backs off briefly and re-checks, smoothing short bursts — or
//! *shed* with an explicit [`Overloaded`](crate::frame::Response::Overloaded)
//! response, so the client learns immediately instead of waiting in an
//! ever-deepening queue.

use std::time::Duration;

/// Admission tuning for a wire server.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queue-depth high-watermark in tuples: a batch is admitted only while
    /// the cluster-wide queue depth is *below* this.
    pub max_queue_tuples: u64,
    /// Times a connection re-checks a full queue before shedding. Zero
    /// sheds immediately at the watermark.
    pub defer_retries: u32,
    /// Back-off between defer re-checks.
    pub defer_wait: Duration,
    /// Server-wide budget on concurrently open connections: an accept past
    /// it is answered with one
    /// [`TOO_MANY_CONNECTIONS`](crate::frame::error_code::TOO_MANY_CONNECTIONS)
    /// error frame and closed — admission control at the socket level, so
    /// a connect storm degrades into explicit refusals instead of fd
    /// exhaustion. Default: `DITTO_MAX_CONNS`, else 10 240.
    pub max_connections: usize,
}

/// `DITTO_MAX_CONNS`, else 10 240 — comfortably above the 1k+ bench sweep
/// while staying under common fd ulimits with room for the client side.
fn default_max_connections() -> usize {
    std::env::var("DITTO_MAX_CONNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_240)
}

impl AdmissionConfig {
    /// A permissive default: a deep watermark (1 Mi tuples) with two brief
    /// defer rounds — overload protection without shedding under ordinary
    /// bursts — and the environment-driven connection budget.
    pub fn new() -> Self {
        AdmissionConfig {
            max_queue_tuples: 1 << 20,
            defer_retries: 2,
            defer_wait: Duration::from_millis(1),
            max_connections: default_max_connections(),
        }
    }

    /// Sets the queue-depth high-watermark in tuples.
    pub fn with_watermark(mut self, tuples: u64) -> Self {
        self.max_queue_tuples = tuples;
        self
    }

    /// Sets the defer policy (`retries` re-checks, `wait` apart). Zero
    /// retries sheds immediately at the watermark.
    pub fn with_defer(mut self, retries: u32, wait: Duration) -> Self {
        self.defer_retries = retries;
        self.defer_wait = wait;
        self
    }

    /// Sets the concurrent-connection budget.
    ///
    /// # Panics
    ///
    /// Panics on a zero budget (a server that can never accept is a
    /// configuration bug, not a policy).
    pub fn with_max_connections(mut self, connections: usize) -> Self {
        assert!(connections > 0, "connection budget must be nonzero");
        self.max_connections = connections;
        self
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::new()
    }
}

/// The outcome of one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Queue depth is below the watermark: admit the batch.
    Admit,
    /// Queue is full but attempts remain: back off and re-check.
    Defer,
    /// Queue is full and attempts are exhausted: shed the batch.
    Shed,
}

/// Evaluates admission attempts against an [`AdmissionConfig`].
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
}

impl AdmissionController {
    /// Creates a controller.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController { config }
    }

    /// The configured tuning.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides attempt number `attempt` (0-based) at the observed
    /// cluster-wide `queue_depth`.
    pub fn evaluate(&self, queue_depth: u64, attempt: u32) -> AdmissionDecision {
        if queue_depth < self.config.max_queue_tuples {
            AdmissionDecision::Admit
        } else if attempt < self.config.defer_retries {
            AdmissionDecision::Defer
        } else {
            AdmissionDecision::Shed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(watermark: u64, retries: u32) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig::new()
                .with_watermark(watermark)
                .with_defer(retries, Duration::from_micros(1)),
        )
    }

    #[test]
    fn below_watermark_admits() {
        let c = controller(100, 2);
        assert_eq!(c.evaluate(0, 0), AdmissionDecision::Admit);
        assert_eq!(c.evaluate(99, 5), AdmissionDecision::Admit);
    }

    #[test]
    fn at_watermark_defers_then_sheds() {
        let c = controller(100, 2);
        assert_eq!(c.evaluate(100, 0), AdmissionDecision::Defer);
        assert_eq!(c.evaluate(5_000, 1), AdmissionDecision::Defer);
        assert_eq!(c.evaluate(100, 2), AdmissionDecision::Shed);
    }

    #[test]
    fn zero_retries_sheds_immediately() {
        let c = controller(1, 0);
        assert_eq!(c.evaluate(1, 0), AdmissionDecision::Shed);
        assert_eq!(c.evaluate(0, 0), AdmissionDecision::Admit);
    }

    #[test]
    fn connection_budget_defaults_and_overrides() {
        // No DITTO_MAX_CONNS in the test environment: the baked default.
        assert_eq!(AdmissionConfig::new().max_connections, 10_240);
        assert_eq!(
            AdmissionConfig::new()
                .with_max_connections(3)
                .max_connections,
            3
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_connection_budget_panics() {
        let _ = AdmissionConfig::new().with_max_connections(0);
    }
}
