//! Property tests for the wire frame codec, in the workspace's
//! deterministic style (seeded xoshiro256** instead of a proptest dep):
//!
//! * encode → decode is the identity for random requests, responses and
//!   raw frames;
//! * every truncation of a valid frame is rejected with an error — never a
//!   panic, never a bogus success;
//! * corrupted headers (magic, version, kind, reserved bits, length) are
//!   rejected;
//! * arbitrary garbage never panics the decoder.

use datagen::rng::Xoshiro256;
use datagen::Tuple;
use ditto_wire::frame::{
    metrics_format, Frame, FrameError, FrameKind, Request, Response, WireStats, HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
};

const ROUNDS: usize = 200;

fn random_tuples(rng: &mut Xoshiro256, max: usize) -> Vec<Tuple> {
    let n = rng.range_u64(max as u64 + 1) as usize;
    (0..n)
        .map(|_| Tuple::new(rng.next_u64(), rng.next_u64()))
        .collect()
}

fn random_request(rng: &mut Xoshiro256) -> Request {
    match rng.range_u64(5) {
        0 => Request::Submit {
            tuples: random_tuples(rng, 64),
        },
        1 => Request::Stats,
        2 => Request::Finalize,
        3 => Request::Metrics {
            format: if rng.range_u64(2) == 0 {
                metrics_format::BINARY
            } else {
                metrics_format::PROMETHEUS
            },
        },
        _ => Request::Ping {
            echo: (0..rng.range_u64(32))
                .map(|_| rng.next_u64() as u8)
                .collect(),
        },
    }
}

fn random_response(rng: &mut Xoshiro256) -> Response {
    match rng.range_u64(7) {
        0 => Response::Done {
            tuples: rng.next_u64(),
            latency_cycles: rng.next_u64(),
            wall_us: rng.next_u64(),
        },
        1 => Response::Stats(WireStats {
            batches_submitted: rng.next_u64(),
            batches_completed: rng.next_u64(),
            batches_shed: rng.next_u64(),
            tuples_submitted: rng.next_u64(),
            tuples_completed: rng.next_u64(),
            tuples_shed: rng.next_u64(),
            queue_depth: rng.next_u64(),
            queue_depth_peak: rng.next_u64(),
            p50_cycles: rng.next_u64(),
            p99_cycles: rng.next_u64(),
            p50_wall_us: rng.next_u64(),
            p99_wall_us: rng.next_u64(),
            p999_cycles: rng.next_u64(),
            p999_wall_us: rng.next_u64(),
        }),
        2 => Response::Output {
            bytes: (0..rng.range_u64(128))
                .map(|_| rng.next_u64() as u8)
                .collect(),
        },
        3 => Response::Pong {
            echo: (0..rng.range_u64(16))
                .map(|_| rng.next_u64() as u8)
                .collect(),
        },
        4 => Response::Overloaded {
            queue_depth: rng.next_u64(),
            watermark: rng.next_u64(),
        },
        5 => Response::MetricsDump {
            format: if rng.range_u64(2) == 0 {
                metrics_format::BINARY
            } else {
                metrics_format::PROMETHEUS
            },
            body: (0..rng.range_u64(256))
                .map(|_| rng.next_u64() as u8)
                .collect(),
        },
        _ => Response::Error {
            code: rng.next_u64() as u16,
            message: format!("error {}", rng.range_u64(1_000)),
        },
    }
}

#[test]
fn random_requests_roundtrip() {
    let mut rng = Xoshiro256::new(0xf7a3e);
    for _ in 0..ROUNDS {
        let req = random_request(&mut rng);
        let app = rng.next_u64() as u16;
        let seq = rng.next_u64();
        let frame = req.clone().into_frame(app, seq);
        let bytes = frame.to_bytes();
        let (decoded, used) = Frame::decode(&bytes).expect("frame decodes");
        assert_eq!(used, bytes.len(), "whole buffer consumed");
        assert_eq!(decoded, frame, "raw frame identity");
        assert_eq!(decoded.app, app);
        assert_eq!(decoded.seq, seq);
        assert_eq!(Request::decode(&decoded).expect("typed decode"), req);
    }
}

#[test]
fn random_responses_roundtrip() {
    let mut rng = Xoshiro256::new(0xbeefcafe);
    for _ in 0..ROUNDS {
        let resp = random_response(&mut rng);
        let frame = resp
            .clone()
            .into_frame(rng.next_u64() as u16, rng.next_u64());
        let (decoded, _) = Frame::decode(&frame.to_bytes()).expect("frame decodes");
        assert_eq!(Response::decode(&decoded).expect("typed decode"), resp);
    }
}

#[test]
fn every_truncation_is_rejected_without_panic() {
    let mut rng = Xoshiro256::new(0x71c);
    for _ in 0..40 {
        let frame = random_request(&mut rng).into_frame(1, rng.next_u64());
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(FrameError::Truncated { .. }) => {}
                Err(other) => panic!("truncation at {cut} gave unexpected error {other}"),
                Ok(_) => panic!("truncated frame at {cut} decoded successfully"),
            }
        }
        // And through the reader path: mid-frame EOF is an Io error.
        for cut in 1..bytes.len() {
            let mut r: &[u8] = &bytes[..cut];
            assert!(
                matches!(Frame::read_from(&mut r), Err(FrameError::Io(_))),
                "reader accepted a frame cut at {cut}"
            );
        }
    }
}

#[test]
fn corrupt_headers_are_rejected() {
    let frame = Request::Submit {
        tuples: vec![Tuple::new(1, 2)],
    }
    .into_frame(5, 99);
    let good = frame.to_bytes();
    assert!(Frame::decode(&good).is_ok());

    let mut bad = good.clone();
    bad[0] ^= 0xff;
    assert!(matches!(Frame::decode(&bad), Err(FrameError::BadMagic(_))));

    let mut bad = good.clone();
    bad[2] = 200;
    assert!(matches!(
        Frame::decode(&bad),
        Err(FrameError::BadVersion(200))
    ));

    let mut bad = good.clone();
    bad[3] = 0x7f;
    assert!(matches!(
        Frame::decode(&bad),
        Err(FrameError::UnknownKind(0x7f))
    ));

    // Bytes 6..8 are no longer reserved-must-be-zero: they carry the auth
    // token, so flipping them still decodes — as a token-bearing frame.
    let mut with_token = good.clone();
    with_token[6] = 1;
    let (decoded, _) = Frame::decode(&with_token).expect("token bytes are not a defect");
    assert_eq!(decoded.token, 1);

    let mut bad = good.clone();
    bad[16..20].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32 + 1).to_le_bytes());
    assert!(matches!(Frame::decode(&bad), Err(FrameError::Oversize(_))));

    // Payload-level corruption: shrink the declared tuple count so payload
    // bytes trail.
    let mut bad = good;
    bad[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&0u32.to_le_bytes());
    let (decoded, _) = Frame::decode(&bad).expect("frame layer still fine");
    assert!(matches!(
        Request::decode(&decoded),
        Err(FrameError::BadPayload(_))
    ));
}

#[test]
fn arbitrary_garbage_never_panics() {
    let mut rng = Xoshiro256::new(0xdead);
    for _ in 0..ROUNDS {
        let len = rng.range_u64(256) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Either error or a (coincidentally) valid frame — just no panic.
        if let Ok((frame, used)) = Frame::decode(&garbage) {
            assert!(used <= garbage.len());
            let _ = Request::decode(&frame);
            let _ = Response::decode(&frame);
        }
        let mut r: &[u8] = &garbage;
        let _ = Frame::read_from(&mut r);
    }
}

#[test]
fn kind_discriminants_are_pinned() {
    // The wire protocol is external surface: discriminants must never
    // drift silently.
    assert_eq!(FrameKind::Submit as u8, 0x01);
    assert_eq!(FrameKind::Stats as u8, 0x02);
    assert_eq!(FrameKind::Finalize as u8, 0x03);
    assert_eq!(FrameKind::Ping as u8, 0x04);
    assert_eq!(FrameKind::Metrics as u8, 0x05);
    assert_eq!(FrameKind::Done as u8, 0x81);
    assert_eq!(FrameKind::StatsReply as u8, 0x82);
    assert_eq!(FrameKind::Output as u8, 0x83);
    assert_eq!(FrameKind::Pong as u8, 0x84);
    assert_eq!(FrameKind::MetricsDump as u8, 0x85);
    assert_eq!(FrameKind::Overloaded as u8, 0x90);
    assert_eq!(FrameKind::Error as u8, 0x91);
}
