//! Reactor-specific behaviour over real loopback sockets: high fan-in
//! without head-of-line blocking, slow-reader backpressure and eviction,
//! the connection budget, per-app auth tokens, and drain-flush on the
//! poll(2) fallback backend.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use datagen::{Tuple, UniformGenerator};
use ditto_apps::HistoApp;
use ditto_core::ArchConfig;
use ditto_serve::ServeConfig;
use ditto_wire::{
    frame::error_code, run_load, AdmissionConfig, AppRegistry, Backend, LoadGenConfig, Request,
    Response, WireClient, WireError, WireServer, WireServerConfig,
};

const APP: u16 = 7;
const SHARDS: usize = 2;

fn registry() -> AppRegistry {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let mut registry = AppRegistry::new();
    registry.register(APP, app, ServeConfig::new(SHARDS, arch));
    registry
}

fn boot(config: WireServerConfig) -> WireServer {
    WireServer::bind("127.0.0.1:0", registry(), config).expect("bind loopback")
}

/// ≥256 concurrent pipelined clients complete every batch while one
/// additional client submits and then refuses to read its response for
/// the whole run — a slow reader must cost only its own buffered frames,
/// never head-of-line block the reactor or the other connections.
#[test]
fn high_fan_in_is_not_blocked_by_a_slow_reader() {
    const CONNS: usize = 256;
    const BATCH: usize = 64;
    const BATCHES_PER_CONN: usize = 3;
    let server = boot(WireServerConfig::new());
    let addr = server.local_addr();
    assert!(
        server.io_threads() <= 8,
        "I/O threads scale with cores, not connections"
    );

    // The slow reader: submit, then go silent without reading.
    let mut slow = WireClient::connect(addr).expect("connect slow reader");
    let slow_batch: Vec<Tuple> = UniformGenerator::new(1 << 12, 99).take_vec(BATCH);
    slow.submit(APP, &slow_batch).expect("slow submit");

    let data: Vec<Tuple> =
        UniformGenerator::new(1 << 12, 42).take_vec(CONNS * BATCHES_PER_CONN * BATCH);
    let report = run_load(
        addr,
        APP,
        &data,
        &LoadGenConfig {
            connections: CONNS,
            batch_tuples: BATCH,
            qps: None,
            max_outstanding: 2,
            connect_stagger: Duration::ZERO,
            connect_barrier: false,
        },
    );
    assert_eq!(report.submitted, (CONNS * BATCHES_PER_CONN) as u64);
    assert_eq!(
        report.completed, report.submitted,
        "every fast client completed despite the slow reader"
    );
    assert_eq!(report.shed, 0);
    assert_eq!(report.tuples_completed, data.len() as u64);

    // The slow reader's Done was buffered, not dropped: it reads fine now.
    match slow.recv().expect("slow reader's buffered completion") {
        (_, _, Response::Done { tuples, .. }) => assert_eq!(tuples, BATCH as u64),
        (_, _, other) => panic!("unexpected response: {other:?}"),
    }
    drop(slow);
    let report = server.shutdown();
    assert_eq!(report.connections_accepted, (CONNS + 1) as u64);
}

/// A client that streams submits but never reads responses crosses the
/// outbox hard cap and is evicted, without taking the server (or other
/// clients) with it.
#[test]
fn slow_reader_past_the_hard_cap_is_disconnected() {
    // Tiny soft cap (hard cap = 4×): a handful of unread `Done`s evicts.
    let server = boot(WireServerConfig::new().with_write_buffer(64));
    let addr = server.local_addr();

    // Raw socket client: flood submits in one burst, read nothing.
    let mut flood = TcpStream::connect(addr).expect("connect flood client");
    flood.set_nodelay(true).ok();
    let batch: Vec<Tuple> = UniformGenerator::new(1 << 12, 7).take_vec(16);
    let mut bytes = Vec::new();
    for seq in 0..32u64 {
        Request::Submit {
            tuples: batch.clone(),
        }
        .into_frame(APP, seq)
        .encode(&mut bytes);
    }
    flood.write_all(&bytes).expect("flood submits");

    // The completions pile into a 64-byte-capped outbox; the reactor must
    // kill the connection rather than buffer without bound. We observe the
    // close as EOF/reset rather than a read timeout.
    flood
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut sink = [0u8; 4096];
    loop {
        match flood.read(&mut sink) {
            Ok(0) => break, // server hung up
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("slow reader was never disconnected")
            }
            Err(_) => break, // reset also counts as hung up
        }
    }

    // The server is unharmed and reports the eviction.
    let mut probe = WireClient::connect(addr).expect("connect probe");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = probe.metrics_text(0).expect("metrics text");
        let evictions: f64 = text
            .lines()
            .find(|l| l.starts_with("ditto_wire_slow_disconnects"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .expect("slow-disconnect counter exported");
        if evictions >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "eviction never surfaced in metrics"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(probe.ping().is_ok(), "server still serves after eviction");
    drop(probe);
    server.shutdown();
}

/// Accepts past `max_connections` are answered with one explicit
/// `TOO_MANY_CONNECTIONS` error frame and closed; closing a connection
/// releases its budget slot.
#[test]
fn connection_budget_rejects_then_recovers() {
    let server = boot(
        WireServerConfig::new().with_admission(AdmissionConfig::new().with_max_connections(2)),
    );
    let addr = server.local_addr();

    let mut c1 = WireClient::connect(addr).expect("connect 1");
    let mut c2 = WireClient::connect(addr).expect("connect 2");
    // Round-trips prove both are accepted (budget-counted), not just
    // sitting in the backlog.
    c1.ping().expect("ping 1");
    c2.ping().expect("ping 2");

    let mut c3 = WireClient::connect(addr).expect("TCP connect still succeeds");
    match c3.ping() {
        Err(WireError::Server { code, .. }) => {
            assert_eq!(code, error_code::TOO_MANY_CONNECTIONS);
        }
        Err(WireError::Io(_)) | Err(WireError::Protocol(_)) => {
            // The refusal frame can race the close; a dropped connection
            // is also an explicit (if less informative) refusal.
        }
        other => panic!("over-budget connection was served: {other:?}"),
    }

    // Hanging up releases the slot: a retry gets in.
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = WireClient::connect(addr).expect("reconnect");
        if retry.ping().is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "budget slot never released after disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    drop(c2);
    let report = server.shutdown();
    assert!(
        report.connections_rejected >= 1,
        "rejections are accounted: {report:?}"
    );
}

/// Apps with a registered token refuse `Submit`/`Finalize` frames bearing
/// the wrong one (`BAD_TOKEN`, connection stays usable) and serve clients
/// presenting the right one. Read-only requests stay open-access.
#[test]
fn auth_token_gates_submit_and_finalize() {
    let mut registry = registry();
    registry.set_token(APP, 0xBEEF);
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let batch: Vec<Tuple> = UniformGenerator::new(1 << 12, 5).take_vec(100);

    // No token presented: refused, but the connection survives.
    match client.submit_wait(APP, &batch).expect("transport fine") {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_TOKEN),
        other => panic!("tokenless submit was served: {other:?}"),
    }
    match client.finalize(APP) {
        Err(WireError::Server { code, .. }) => assert_eq!(code, error_code::BAD_TOKEN),
        other => panic!("tokenless finalize was served: {other:?}"),
    }
    client
        .ping()
        .expect("connection still usable after refusals");
    client
        .stats(APP)
        .expect("read-only requests are open-access");

    // Wrong token: same refusal.
    client.set_token(0xDEAD);
    match client.submit_wait(APP, &batch).expect("transport fine") {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_TOKEN),
        other => panic!("wrong-token submit was served: {other:?}"),
    }

    // Right token: served end to end.
    client.set_token(0xBEEF);
    match client.submit_wait(APP, &batch).expect("transport fine") {
        Response::Done { tuples, .. } => assert_eq!(tuples, batch.len() as u64),
        other => panic!("expected Done: {other:?}"),
    }
    let stats = client.stats(APP).expect("stats");
    assert_eq!(stats.batches_completed, 1);
    client.finalize(APP).expect("authorized finalize");
    drop(client);
    server.shutdown();
}

/// The "no `Done` lost" shutdown guarantee on the poll(2) fallback:
/// responses still queued in per-connection write buffers when shutdown
/// begins are flushed before the sockets close.
#[test]
fn shutdown_flushes_queued_dones_on_poll_backend() {
    const BATCHES: u64 = 64;
    let server = boot(WireServerConfig::new().with_backend(Backend::Poll));
    assert_eq!(server.backend(), Backend::Poll);
    let addr = server.local_addr();

    let mut client = WireClient::connect(addr).expect("connect");
    let batch: Vec<Tuple> = UniformGenerator::new(1 << 12, 3).take_vec(50);
    for _ in 0..BATCHES {
        client.submit(APP, &batch).expect("submit");
    }
    // A second connection watches until every batch is admitted, so
    // shutdown races only the *completion* path, not admission.
    let mut observer = WireClient::connect(addr).expect("connect observer");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = observer.stats(APP).expect("stats");
        if stats.batches_submitted == BATCHES {
            break;
        }
        assert!(Instant::now() < deadline, "admission stalled: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(observer);

    let report = server.shutdown();
    let (_, stats) = &report.per_app[0];
    assert_eq!(stats.batches_completed, BATCHES, "shutdown drained all");

    // Every Done must still be readable from the closed socket's buffer —
    // none were lost in a write buffer at close.
    let mut done = 0u64;
    loop {
        match client.recv() {
            Ok((_, _, Response::Done { tuples, .. })) => {
                assert_eq!(tuples, batch.len() as u64);
                done += 1;
            }
            Ok((_, _, other)) => panic!("unexpected response: {other:?}"),
            Err(_) => break, // clean EOF after the flushed tail
        }
    }
    assert_eq!(done, BATCHES, "a Done response was lost in shutdown");
}
