//! End-to-end failure recovery over real loopback sockets: a replicated
//! app whose shard thread is killed mid-run (the `DITTO_KILL_SHARD` fault
//! hook) must keep serving — every submitted batch comes back `Done`, the
//! pump's supervisor promotes the replica between frames, and the
//! finalized output over the wire equals a single-engine run that never
//! saw a failure.

use datagen::{Tuple, ZipfGenerator};
use ditto_apps::HistoApp;
use ditto_core::{ArchConfig, SkewObliviousPipeline};
use ditto_serve::{split_into_batches, ServeConfig, ShardFault};
use ditto_wire::{AppRegistry, Response, WireApp, WireClient, WireServer, WireServerConfig};

const TUPLES: usize = 8_000;
const BATCH: usize = 1_000;
const SHARDS: usize = 3;
const APP: u16 = 7;

#[test]
fn mid_run_shard_kill_is_invisible_to_wire_clients() {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let config = ServeConfig::new(SHARDS, arch.clone()).with_fault(ShardFault {
        shard: 1,
        after_batches: 2,
    });
    let mut registry = AppRegistry::new();
    registry.register_replicated(APP, app.clone(), config, 1);
    let server =
        WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let data = ZipfGenerator::new(3.0, 1 << 16, 101).take_vec(TUPLES);
    let batches = split_into_batches(&data, BATCH);
    let expected = batches.len() as u64;
    for batch in &batches {
        client.submit(APP, batch).expect("submit");
    }
    let mut done = 0u64;
    let mut tuples_acked = 0u64;
    while done < expected {
        let (_, app_id, resp) = client.recv().expect("completion");
        assert_eq!(app_id, APP);
        match resp {
            Response::Done { tuples, .. } => {
                tuples_acked += tuples;
                done += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(
        tuples_acked,
        data.len() as u64,
        "every tuple acknowledged despite the kill"
    );

    // The recovery is visible in the HA metrics plane...
    let snap = client.metrics(APP).expect("metrics");
    let label = APP.to_string();
    let promotions = snap
        .get("ditto_ha_promotions", &[("app", &label)])
        .expect("HA plane exported")
        .value
        .scalar();
    assert_eq!(promotions, 1, "the injected fault fired exactly once");
    let replicas = snap
        .get("ditto_ha_replicas", &[("app", &label)])
        .expect("replica gauge")
        .value
        .scalar();
    assert_eq!(replicas, 1);

    // ...and invisible in the result: the wire-served output equals a
    // single engine that never failed.
    let bytes = client.finalize(APP).expect("finalize");
    let output = app.decode_output(&bytes).expect("decode output");
    let alone = SkewObliviousPipeline::run_dataset(app.clone(), data.clone(), &arch).output;
    assert_eq!(output, alone, "failover changed the served result");
    assert_eq!(output, app.reference(&data), "and both match the host");

    drop(client);
    server.shutdown();
}

#[test]
fn replicated_registration_serves_identically_when_nothing_fails() {
    // A replicated host with no fault behaves exactly like a plain one.
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 3).with_pe_entries(app.pe_entries());
    let mut registry = AppRegistry::new();
    registry.register_replicated(APP, app.clone(), ServeConfig::new(SHARDS, arch.clone()), 2);
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let data: Vec<Tuple> = ZipfGenerator::new(1.5, 1 << 14, 102).take_vec(4_000);
    for batch in split_into_batches(&data, BATCH) {
        let resp = client.submit_wait(APP, &batch).expect("round-trip");
        assert!(matches!(resp, Response::Done { .. }));
    }
    let stats = client.stats(APP).expect("stats");
    assert_eq!(stats.batches_completed, 4);
    assert_eq!(stats.batches_shed, 0);

    let bytes = client.finalize(APP).expect("finalize");
    let output = app.decode_output(&bytes).expect("decode");
    let alone = SkewObliviousPipeline::run_dataset(app, data, &arch).output;
    assert_eq!(output, alone);

    drop(client);
    server.shutdown();
}
