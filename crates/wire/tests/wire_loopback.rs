//! End-to-end loopback: results served over real TCP sockets must equal a
//! single-engine `run_dataset` over the concatenated input, for all five
//! paper applications under uniform and extreme (Zipf-3) skew — plus
//! overload behaviour (explicit shedding instead of unbounded queues) and
//! graceful shutdown.

use std::sync::Arc;

use datagen::{Tuple, UniformGenerator, ZipfGenerator};
use ditto_apps::{DataPartitionApp, HhdApp, HistoApp, HllApp, PageRankApp};
use ditto_core::{ArchConfig, DittoApp, SkewObliviousPipeline};
use ditto_serve::{split_into_batches, ServeConfig};
use ditto_wire::{
    AdmissionConfig, AppRegistry, Response, WireApp, WireClient, WireServer, WireServerConfig,
};
use sketches::Fixed;

const TUPLES: usize = 6_000;
const BATCH: usize = 1_000;
const SHARDS: usize = 2;
const APP: u16 = 7;

fn uniform(seed: u64) -> Vec<Tuple> {
    UniformGenerator::new(1 << 16, seed).take_vec(TUPLES)
}

fn zipf3(seed: u64) -> Vec<Tuple> {
    ZipfGenerator::new(3.0, 1 << 16, seed).take_vec(TUPLES)
}

/// Boots a wire server hosting `app`, serves `data` through a pipelined
/// client over a real loopback socket, finalizes over the wire and decodes
/// the output. Every submitted batch must come back `Done` with sane
/// latency metadata.
fn serve_over_wire<A: WireApp>(app: A, data: &[Tuple], arch: &ArchConfig) -> A::Output {
    let mut registry = AppRegistry::new();
    registry.register(APP, app.clone(), ServeConfig::new(SHARDS, arch.clone()));
    let server =
        WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    // Pipelined: submit everything, then collect the completions.
    let batches = split_into_batches(data, BATCH);
    let expected: u64 = batches.len() as u64;
    for batch in &batches {
        client.submit(APP, batch).expect("submit");
    }
    let mut done = 0u64;
    let mut tuples_acked = 0u64;
    while done < expected {
        let (_, app_id, resp) = client.recv().expect("completion");
        assert_eq!(app_id, APP);
        match resp {
            Response::Done {
                tuples,
                latency_cycles,
                ..
            } => {
                assert!(latency_cycles > 0, "completion carries sim latency");
                tuples_acked += tuples;
                done += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(tuples_acked, data.len() as u64, "every tuple acknowledged");

    let stats = client.stats(APP).expect("stats");
    assert_eq!(stats.batches_completed, expected);
    assert_eq!(stats.batches_shed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.queue_depth_peak > 0);

    let bytes = client.finalize(APP).expect("finalize");
    let output = app.decode_output(&bytes).expect("decode output");
    drop(client);
    server.shutdown();
    output
}

fn single<A: DittoApp + 'static>(app: A, data: &[Tuple], arch: &ArchConfig) -> A::Output {
    SkewObliviousPipeline::run_dataset(app, data.to_vec(), arch).output
}

#[test]
fn histo_wire_equals_single_engine() {
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    for data in [uniform(11), zipf3(12)] {
        let wired = serve_over_wire(app.clone(), &data, &arch);
        let alone = single(app.clone(), &data, &arch);
        assert_eq!(wired, alone, "HISTO wire-served run diverged");
        assert_eq!(wired, app.reference(&data), "and both match the host");
    }
}

#[test]
fn dp_wire_equals_single_engine_as_multisets() {
    let app = DataPartitionApp::new(64, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    for data in [uniform(21), zipf3(22)] {
        let mut wired = serve_over_wire(app.clone(), &data, &arch);
        let mut alone = single(app.clone(), &data, &arch);
        // DP is the non-decomposable app: partition contents compare as
        // multisets, exactly as in the in-process cluster equivalence.
        for bucket in wired.iter_mut().chain(alone.iter_mut()) {
            bucket.sort_unstable();
        }
        assert_eq!(wired, alone, "DP wire-served run diverged");
    }
}

#[test]
fn pagerank_wire_equals_single_engine_bit_for_bit() {
    let graph = ditto_graph::generate::rmat(10, 8.0, 0.57, 0.19, 0.19, 0x5eed);
    let contribs: Arc<Vec<Fixed>> = Arc::new(
        (0..graph.vertex_count())
            .map(|v| Fixed::from_f64(1.0 / (graph.out_degree(v).max(1) as f64)))
            .collect(),
    );
    let app = PageRankApp::new(contribs, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    let edges = PageRankApp::edge_tuples(&graph);
    let wired = serve_over_wire(app.clone(), &edges, &arch);
    let alone = single(app, &edges, &arch);
    assert_eq!(wired, alone, "PR wire-served run diverged");
}

#[test]
fn hll_wire_equals_single_engine() {
    let app = HllApp::new(10, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    for data in [uniform(31), zipf3(32)] {
        let wired = serve_over_wire(app.clone(), &data, &arch);
        let alone = single(app.clone(), &data, &arch);
        assert_eq!(wired, alone, "HLL register files diverged");
    }
}

#[test]
fn hhd_wire_equals_single_engine() {
    let app = HhdApp::new(4, 512, 300, 8);
    let arch = ArchConfig::new(4, 8, 7).with_pe_entries(app.pe_entries());
    for data in [uniform(41), zipf3(42)] {
        let wired = serve_over_wire(app.clone(), &data, &arch);
        let alone = single(app.clone(), &data, &arch);
        assert_eq!(wired, alone, "HHD reports diverged");
    }
}

#[test]
fn overload_sheds_instead_of_queueing() {
    // A watermark smaller than one batch with no defer: as soon as any
    // batch is in flight, the next is shed. Flooding without reading
    // responses forces the condition deterministically.
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 3).with_pe_entries(app.pe_entries());
    let mut registry = AppRegistry::new();
    registry.register(APP, app.clone(), ServeConfig::new(SHARDS, arch));
    let config = WireServerConfig::new().with_admission(
        AdmissionConfig::new()
            .with_watermark(BATCH as u64 / 2)
            .with_defer(0, std::time::Duration::ZERO),
    );
    let server = WireServer::bind("127.0.0.1:0", registry, config).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let data = zipf3(51);
    let batches = split_into_batches(&data, BATCH);
    let total = batches.len() as u64;
    for batch in &batches {
        client.submit(APP, batch).expect("submit");
    }
    let mut done = Vec::new();
    let mut shed = Vec::new();
    for _ in 0..total {
        let (seq, _, resp) = client.recv().expect("response");
        match resp {
            Response::Done { .. } => done.push(seq),
            Response::Overloaded {
                queue_depth,
                watermark,
            } => {
                assert_eq!(watermark, BATCH as u64 / 2);
                assert!(queue_depth >= watermark, "shed below the watermark");
                shed.push(seq);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(!done.is_empty(), "everything was shed");
    assert!(!shed.is_empty(), "nothing was shed under forced overload");

    // Shed counts are visible in the serving stats...
    let stats = client.stats(APP).expect("stats");
    assert_eq!(stats.batches_shed, shed.len() as u64);
    assert_eq!(stats.batches_completed, done.len() as u64);
    assert_eq!(
        stats.tuples_submitted + stats.tuples_shed,
        data.len() as u64,
        "every tuple either admitted or shed"
    );

    // ...and the admitted subset is served *correctly*: the wire output
    // equals the host reference over exactly the admitted batches.
    let admitted: Vec<Tuple> = batches
        .iter()
        .enumerate()
        .filter(|(i, _)| done.contains(&(*i as u64)))
        .flat_map(|(_, b)| b.iter().copied())
        .collect();
    let bytes = client.finalize(APP).expect("finalize");
    let output = app.decode_output(&bytes).expect("decode");
    assert_eq!(output, app.reference(&admitted), "admitted tuples served");

    drop(client);
    let report = server.shutdown();
    let (_, final_stats) = report.per_app[0];
    assert_eq!(final_stats.batches_shed, shed.len() as u64);
}

#[test]
fn per_app_admission_budgets_isolate_apps() {
    // Two apps on one server: the "strict" app carries its own tiny
    // admission budget (half a batch, no defer) while the "lenient" one
    // uses the permissive server-wide policy. Flooding both must force the
    // strict app into Overloaded without the lenient app shedding anything.
    const STRICT: u16 = 7;
    const LENIENT: u16 = 8;
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 3).with_pe_entries(app.pe_entries());
    let mut registry = AppRegistry::new();
    registry.register_with_admission(
        STRICT,
        app.clone(),
        ServeConfig::new(SHARDS, arch.clone()),
        AdmissionConfig::new()
            .with_watermark(BATCH as u64 / 2)
            .with_defer(0, std::time::Duration::ZERO),
    );
    registry.register(LENIENT, app.clone(), ServeConfig::new(SHARDS, arch));
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let data = zipf3(71);
    let batches = split_into_batches(&data, BATCH);
    let total = batches.len() as u64;
    // Interleave the flood so both apps see the same arrival pattern.
    for batch in &batches {
        client.submit(STRICT, batch).expect("submit strict");
        client.submit(LENIENT, batch).expect("submit lenient");
    }
    let mut strict_done = 0u64;
    let mut strict_shed = 0u64;
    let mut lenient_done = 0u64;
    for _ in 0..2 * total {
        let (_, app_id, resp) = client.recv().expect("response");
        match (app_id, resp) {
            (STRICT, Response::Done { .. }) => strict_done += 1,
            (STRICT, Response::Overloaded { watermark, .. }) => {
                assert_eq!(watermark, BATCH as u64 / 2, "strict app's own budget");
                strict_shed += 1;
            }
            (LENIENT, Response::Done { .. }) => lenient_done += 1,
            (id, other) => panic!("unexpected response for app {id}: {other:?}"),
        }
    }
    assert!(strict_shed > 0, "strict app never hit its budget");
    assert_eq!(strict_done + strict_shed, total);
    assert_eq!(lenient_done, total, "lenient app must keep serving");

    let strict_stats = client.stats(STRICT).expect("stats");
    assert_eq!(strict_stats.batches_shed, strict_shed);
    let lenient_stats = client.stats(LENIENT).expect("stats");
    assert_eq!(lenient_stats.batches_shed, 0);
    assert_eq!(lenient_stats.batches_completed, total);

    drop(client);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_batches() {
    let app = HistoApp::new(64, 4);
    let arch = ArchConfig::new(2, 4, 1).with_pe_entries(app.pe_entries());
    let mut registry = AppRegistry::new();
    registry.register(APP, app, ServeConfig::new(1, arch));
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let data = uniform(61);
    let batches = split_into_batches(&data, BATCH);
    let total = batches.len() as u64;
    for batch in &batches {
        client.submit(APP, batch).expect("submit");
    }
    // Wait (on a second connection, so stats replies never interleave with
    // this client's Done stream) until every batch is admitted — then shut
    // down while completions are still in flight.
    let mut observer = WireClient::connect(server.local_addr()).expect("connect observer");
    loop {
        let stats = observer.stats(APP).expect("stats");
        if stats.batches_submitted == total {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let report = server.shutdown();
    assert_eq!(report.connections_accepted, 2);
    let (app_id, stats) = &report.per_app[0];
    assert_eq!(*app_id, APP);
    assert_eq!(stats.batches_submitted, total);
    assert_eq!(
        stats.batches_completed, total,
        "an admitted batch was not drained"
    );
    assert_eq!(stats.queue_depth, 0, "shutdown left work queued");

    // Every Done was flushed before the socket closed.
    let mut done = 0;
    loop {
        match client.recv() {
            Ok((_, _, Response::Done { .. })) => done += 1,
            Ok((_, _, other)) => panic!("unexpected response: {other:?}"),
            Err(_) => break, // server closed after flushing
        }
    }
    assert_eq!(done, total, "a Done response was lost in shutdown");
}

/// One `Metrics` round-trip over a real loopback socket must return
/// per-shard counters, bucketed latency histograms with p50/p99/p999 and
/// admission/shed totals for *every* registered app — in both the binary
/// codec and validated Prometheus text — and the server's span journals
/// must reconstruct a full batch lifecycle with monotone timestamps,
/// exportable as Chrome trace-event JSON.
#[test]
fn metrics_dump_and_trace_export_over_loopback() {
    use ditto_obs::{chrome_trace_json, validate_prometheus_text, MetricValue, SpanStage};

    const APP_A: u16 = 7;
    const APP_B: u16 = 8;
    let app = HistoApp::new(256, 8);
    let arch = ArchConfig::new(4, 8, 3).with_pe_entries(app.pe_entries());
    let mut registry = AppRegistry::new();
    registry.register(APP_A, app.clone(), ServeConfig::new(SHARDS, arch.clone()));
    registry.register(APP_B, app.clone(), ServeConfig::new(SHARDS, arch));
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let data = zipf3(81);
    let batches = split_into_batches(&data, BATCH);
    let total = batches.len() as u64;
    for batch in &batches {
        client.submit(APP_A, batch).expect("submit A");
        client.submit(APP_B, batch).expect("submit B");
    }
    for _ in 0..2 * total {
        let (_, _, resp) = client.recv().expect("completion");
        assert!(matches!(resp, Response::Done { .. }));
    }

    // -- Binary dump, app 0 = every hosted app, labelled. --
    let snap = client.metrics(0).expect("metrics dump");
    for app_id in [APP_A, APP_B] {
        let label = app_id.to_string();
        // Per-shard serving counters for this app sum to the dataset size.
        let mut shard_tuples = 0u64;
        for shard in 0..SHARDS {
            let e = snap
                .get(
                    "ditto_serve_tuples_total",
                    &[("app", &label), ("shard", &shard.to_string())],
                )
                .unwrap_or_else(|| panic!("no shard {shard} counters for app {app_id}"));
            shard_tuples += e.value.scalar();
        }
        assert_eq!(shard_tuples, data.len() as u64, "app {app_id} tuples");
        // Admission totals.
        let submitted = snap
            .get("ditto_cluster_batches_submitted", &[("app", &label)])
            .expect("admission totals present")
            .value
            .scalar();
        assert_eq!(submitted, total);
        let shed = snap
            .get("ditto_cluster_batches_shed", &[("app", &label)])
            .expect("shed totals present")
            .value
            .scalar();
        assert_eq!(shed, 0);
        // Bucketed latency histogram with all three quantiles.
        let e = snap
            .get("ditto_cluster_batch_latency_cycles", &[("app", &label)])
            .expect("latency histogram present");
        let MetricValue::Histogram(h) = &e.value else {
            panic!("latency metric is not a histogram");
        };
        let s = h.stats();
        assert_eq!(s.count, total);
        assert!(s.p50 > 0 && s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        // Engine counters made it through the merge too.
        let cycles = snap
            .get("ditto_engine_cycles", &[("app", &label), ("shard", "0")])
            .expect("engine counters present")
            .value
            .scalar();
        assert!(cycles > 0);
    }

    // -- Prometheus text scrape parses cleanly. --
    let text = client.metrics_text(0).expect("prometheus scrape");
    validate_prometheus_text(&text).expect("exposition must parse");
    assert!(text.contains("ditto_serve_tuples_total"));
    assert!(text.contains("quantile=\"0.999\""));

    // -- Span journals reconstruct a full batch lifecycle. --
    let events = server.take_trace_events();
    let spans_with = |stage: SpanStage| -> std::collections::HashSet<(u16, u64)> {
        events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| (e.app, e.span))
            .collect()
    };
    let full: Vec<(u16, u64)> = [
        SpanStage::Accept,
        SpanStage::Admit,
        SpanStage::Queue,
        SpanStage::Step,
        SpanStage::Drain,
        SpanStage::Merge,
        SpanStage::Reply,
    ]
    .iter()
    .map(|&s| spans_with(s))
    .reduce(|a, b| a.intersection(&b).copied().collect())
    .expect("stage list non-empty")
    .into_iter()
    .collect();
    assert!(
        !full.is_empty(),
        "no span covers the full accept→reply lifecycle"
    );
    // Causality is per-shard between queue/step/drain (shard B may finish
    // its slice before shard A even dequeues its command), global at the
    // boundaries: accept ≤ admit ≤ every queue; every drain ≤ merge ≤
    // reply; and queue ≤ step ≤ drain within each shard.
    for &(app_id, span) in &full {
        let evs: Vec<_> = events
            .iter()
            .filter(|e| e.app == app_id && e.span == span)
            .collect();
        let walls = |stage: SpanStage| -> Vec<u64> {
            evs.iter()
                .filter(|e| e.stage == stage)
                .map(|e| e.wall_us)
                .collect()
        };
        let max = |stage| *walls(stage).iter().max().expect("stage present");
        let min = |stage| *walls(stage).iter().min().expect("stage present");
        assert!(max(SpanStage::Accept) <= min(SpanStage::Admit));
        assert!(max(SpanStage::Admit) <= min(SpanStage::Queue));
        assert!(max(SpanStage::Drain) <= min(SpanStage::Merge));
        assert!(max(SpanStage::Merge) <= min(SpanStage::Reply));
        let shards: std::collections::HashSet<u32> = evs
            .iter()
            .filter(|e| e.stage == SpanStage::Queue)
            .map(|e| e.shard)
            .collect();
        for shard in shards {
            let on_shard = |stage: SpanStage| -> Option<u64> {
                evs.iter()
                    .filter(|e| e.stage == stage && e.shard == shard)
                    .map(|e| e.wall_us)
                    .max()
            };
            let q = on_shard(SpanStage::Queue).expect("queue present");
            if let Some(s) = on_shard(SpanStage::Step) {
                assert!(q <= s, "span {span} shard {shard}: queue after step");
                if let Some(d) = on_shard(SpanStage::Drain) {
                    assert!(s <= d, "span {span} shard {shard}: step after drain");
                }
            }
        }
    }

    // -- Chrome trace-event export (CI uploads this artifact). --
    let json = chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"reply\""));
    let out = std::env::var("DITTO_TRACE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("ditto_wire_trace.json"));
    std::fs::write(&out, &json).expect("write trace artifact");

    drop(client);
    server.shutdown();
}

#[test]
fn unknown_app_and_garbage_are_answered_not_crashed() {
    let mut registry = AppRegistry::new();
    registry.register(
        APP,
        HistoApp::new(16, 4),
        ServeConfig::new(1, ArchConfig::new(2, 4, 1)),
    );
    let server = WireServer::bind("127.0.0.1:0", registry, WireServerConfig::new()).expect("bind");

    // Unknown app id: explicit error, connection stays usable.
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let resp = client
        .submit_wait(999, &[Tuple::from_key(1)])
        .expect("answered");
    assert!(
        matches!(resp, Response::Error { code, .. } if code == ditto_wire::frame::error_code::UNKNOWN_APP)
    );
    assert!(client.ping().is_ok(), "connection survived the error");

    // Garbage bytes: the server answers one error frame and hangs up; the
    // listener keeps accepting.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
        // More than one header's worth, so the frame parser actually runs
        // (a shorter blob would leave the server waiting for the rest).
        raw.write_all(b"GET /ditto HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write garbage");
        raw.flush().expect("flush garbage");
        let frame = ditto_wire::Frame::read_from(&mut raw)
            .expect("error frame")
            .expect("frame before close");
        assert!(matches!(
            Response::decode(&frame).expect("typed"),
            Response::Error { .. }
        ));
    }
    assert!(client.ping().is_ok(), "server survived the garbage");
    drop(client);
    server.shutdown();
}
