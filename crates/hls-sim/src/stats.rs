//! Shared counters and windowed throughput measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Cycle;

/// A shared monotonic counter.
///
/// Kernels increment it (e.g. "tuples processed"); observers — the runtime
/// profiler's throughput monitor, the experiment harness — read it. Cloning
/// yields another handle to the same count.
///
/// Backed by an atomic with relaxed ordering so handles are `Send + Sync`
/// (the engine itself is single-threaded per simulation; atomicity only
/// matters for moving whole engines across threads).
///
/// # Example
///
/// ```
/// use hls_sim::Counter;
///
/// let c = Counter::new();
/// let handle = c.clone();
/// handle.add(3);
/// handle.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Reads the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the count to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// Overwrites the count with `n`.
    pub fn reset_to(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }
}

/// Sliding-window throughput observer over a [`Counter`].
///
/// Mirrors the runtime profiler's monitoring logic (§IV-C3): it keeps a local
/// clock tick, and every `window` ticks computes the incremental number of
/// processed items. [`ThroughputWindow::tick`] returns `Some(rate)` in
/// items/cycle exactly once per completed window.
#[derive(Debug, Clone)]
pub struct ThroughputWindow {
    counter: Counter,
    window: u64,
    last_cycle: Cycle,
    last_count: u64,
}

impl ThroughputWindow {
    /// Creates a window of `window` cycles over `counter`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(counter: Counter, window: u64) -> Self {
        assert!(window > 0, "throughput window must be nonzero");
        ThroughputWindow {
            counter,
            window,
            last_cycle: 0,
            last_count: 0,
        }
    }

    /// Advances the observer to cycle `cy`; returns the items/cycle rate of
    /// the window that just completed, if one did.
    pub fn tick(&mut self, cy: Cycle) -> Option<f64> {
        if cy < self.last_cycle + self.window {
            return None;
        }
        let count = self.counter.get();
        let cycles = (cy - self.last_cycle) as f64;
        let rate = (count - self.last_count) as f64 / cycles;
        self.last_cycle = cy;
        self.last_count = count;
        Some(rate)
    }

    /// The configured window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Restarts the window at cycle `cy` without emitting a sample.
    pub fn restart(&mut self, cy: Cycle) {
        self.last_cycle = cy;
        self.last_count = self.counter.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shares_state_across_clones() {
        let a = Counter::new();
        let b = a.clone();
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        a.reset();
        assert_eq!(b.get(), 0);
        b.reset_to(9);
        assert_eq!(a.get(), 9);
    }

    #[test]
    fn counter_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>(_t: &T) {}
        assert_send_sync(&Counter::new());
    }

    #[test]
    fn throughput_window_emits_once_per_window() {
        let c = Counter::new();
        let mut w = ThroughputWindow::new(c.clone(), 10);
        let mut samples = Vec::new();
        for cy in 1..=30 {
            c.add(2); // 2 items/cycle
            if let Some(r) = w.tick(cy) {
                samples.push(r);
            }
        }
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!((s - 2.0).abs() < 1e-9, "rate {s}");
        }
    }

    #[test]
    fn throughput_window_restart_suppresses_partial_sample() {
        let c = Counter::new();
        let mut w = ThroughputWindow::new(c.clone(), 10);
        c.add(100);
        w.restart(5);
        assert_eq!(w.tick(9), None);
        c.add(10);
        let r = w.tick(15).expect("window complete");
        assert!((r - 1.0).abs() < 1e-9);
    }
}
