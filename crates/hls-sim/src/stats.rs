//! Windowed throughput measurement over arena counters.

use crate::Cycle;

/// Sliding-window throughput observer over a monotonic count.
///
/// Mirrors the runtime profiler's monitoring logic (§IV-C3): it keeps a local
/// clock tick, and every `window` ticks computes the incremental number of
/// processed items. The observer holds no handle to the count itself — the
/// caller reads its [`CounterId`](crate::CounterId) through the
/// [`SimContext`](crate::SimContext) and feeds the current value to
/// [`tick`](ThroughputWindow::tick), which returns `Some(rate)` in
/// items/cycle exactly once per completed window.
///
/// # Example
///
/// ```
/// use hls_sim::ThroughputWindow;
///
/// let mut w = ThroughputWindow::new(10);
/// let mut count = 0u64;
/// let mut samples = Vec::new();
/// for cy in 1..=30 {
///     count += 2; // 2 items/cycle
///     if let Some(rate) = w.tick(cy, count) {
///         samples.push(rate);
///     }
/// }
/// assert_eq!(samples.len(), 3);
/// assert!((samples[0] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputWindow {
    window: u64,
    last_cycle: Cycle,
    last_count: u64,
}

impl ThroughputWindow {
    /// Creates a window of `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "throughput window must be nonzero");
        ThroughputWindow {
            window,
            last_cycle: 0,
            last_count: 0,
        }
    }

    /// Advances the observer to cycle `cy` with the current monotonic
    /// `count`; returns the items/cycle rate of the window that just
    /// completed, if one did.
    pub fn tick(&mut self, cy: Cycle, count: u64) -> Option<f64> {
        if cy < self.last_cycle + self.window {
            return None;
        }
        let cycles = (cy - self.last_cycle) as f64;
        let rate = (count - self.last_count) as f64 / cycles;
        self.last_cycle = cy;
        self.last_count = count;
        Some(rate)
    }

    /// The configured window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// First cycle at which [`tick`](Self::tick) will complete the current
    /// window. Every `tick` strictly before this cycle returns `None`
    /// without mutating the observer — the window's fast-forward hold
    /// horizon.
    pub fn next_boundary(&self) -> Cycle {
        self.last_cycle + self.window
    }

    /// Restarts the window at cycle `cy` and baseline `count` without
    /// emitting a sample.
    pub fn restart(&mut self, cy: Cycle, count: u64) {
        self.last_cycle = cy;
        self.last_count = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_window_emits_once_per_window() {
        let mut w = ThroughputWindow::new(10);
        let mut count = 0;
        let mut samples = Vec::new();
        for cy in 1..=30 {
            count += 2; // 2 items/cycle
            if let Some(r) = w.tick(cy, count) {
                samples.push(r);
            }
        }
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!((s - 2.0).abs() < 1e-9, "rate {s}");
        }
    }

    #[test]
    fn throughput_window_restart_suppresses_partial_sample() {
        let mut w = ThroughputWindow::new(10);
        w.restart(5, 100);
        assert_eq!(w.tick(9, 100), None);
        let r = w.tick(15, 110).expect("window complete");
        assert!((r - 1.0).abs() < 1e-9);
    }
}
