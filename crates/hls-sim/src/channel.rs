//! Bounded, latency-aware FIFO channels living in the engine's channel
//! arena.
//!
//! A channel models an HLS `cl_channel`: a hardware FIFO with a fixed
//! capacity (the paper sizes PE input queues at a few hundred entries) and a
//! visibility latency of at least one cycle, so that a value written in
//! cycle `c` is readable in `c + latency` at the earliest. Producers observe
//! backpressure through [`SimContext::try_send`](crate::SimContext::try_send)
//! returning [`SendError::Full`](SendError).
//!
//! Unlike the original `Rc<RefCell<…>>` handle design, channels are owned by
//! the [`Engine`](crate::Engine)'s arena and kernels hold plain-`Copy`
//! [`SenderId`]/[`ReceiverId`] handles, resolved through the
//! [`SimContext`](crate::SimContext) passed to every `step`. This removes
//! all per-access reference counting and interior-mutability checks from the
//! hot path and makes the whole engine `Send`.
//!
//! The arena also provides a *broadcast* channel
//! ([`BcastSenderId`]/[`BcastReceiverId`]): one producer fanning the same
//! value out to `R` reader taps, each with its own FIFO view, cursor and
//! statistics. It behaves exactly like `R` independent channels that happen
//! to receive identical atomic pushes — which is precisely the combiner's
//! wide-word duplication in the paper's Fig. 3 — but stores each value once
//! instead of `R` times.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

use crate::Cycle;

/// Default visibility latency for newly created channels, in cycles.
pub const DEFAULT_LATENCY: u64 = 1;

/// Raw arena index of a channel; obtained from the typed id handles and used
/// to declare wake subscriptions.
pub type RawChannelId = u32;

/// Error returned by a failed send when the FIFO is full.
///
/// Carries the rejected value back to the caller so it can be retried next
/// cycle without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel full")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Producer handle of an arena channel. Plain `Copy` data; resolved through
/// the [`SimContext`](crate::SimContext).
pub struct SenderId<T> {
    pub(crate) idx: u32,
    pub(crate) _marker: PhantomData<fn(T)>,
}

/// Consumer handle of an arena channel.
pub struct ReceiverId<T> {
    pub(crate) idx: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

/// Producer handle of a broadcast channel.
pub struct BcastSenderId<T> {
    pub(crate) idx: u32,
    pub(crate) _marker: PhantomData<fn(T)>,
}

/// One reader tap of a broadcast channel.
pub struct BcastReceiverId<T> {
    pub(crate) idx: u32,
    pub(crate) reader: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

macro_rules! impl_id_traits {
    ($name:ident) => {
        impl<T> Clone for $name<T> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<T> Copy for $name<T> {}
        impl<T> fmt::Debug for $name<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.idx)
            }
        }
    };
}

impl_id_traits!(SenderId);
impl_id_traits!(ReceiverId);
impl_id_traits!(BcastSenderId);
impl_id_traits!(BcastReceiverId);

impl<T> SenderId<T> {
    /// The raw arena index (for wake subscriptions).
    pub fn raw(&self) -> RawChannelId {
        self.idx
    }
}

impl<T> ReceiverId<T> {
    /// The raw arena index (for wake subscriptions).
    pub fn raw(&self) -> RawChannelId {
        self.idx
    }
}

impl<T> BcastSenderId<T> {
    /// The raw arena index (for wake subscriptions).
    pub fn raw(&self) -> RawChannelId {
        self.idx
    }
}

impl<T> BcastReceiverId<T> {
    /// The raw arena index (for wake subscriptions).
    pub fn raw(&self) -> RawChannelId {
        self.idx
    }

    /// This tap's reader index within the broadcast group.
    pub fn reader(&self) -> u32 {
        self.reader
    }
}

/// A point-in-time snapshot of a channel's lifetime statistics.
///
/// Produced by [`SimContext::channel_stats`](crate::SimContext::channel_stats)
/// (one entry per plain channel, one per broadcast reader tap); used by the
/// experiment harness to report stall behaviour (e.g. how skew fills a hot
/// PE's queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Debug name given at construction.
    pub name: String,
    /// Configured capacity.
    pub capacity: usize,
    /// Total successful pushes.
    pub pushes: u64,
    /// Total successful pops.
    pub pops: u64,
    /// Number of rejected pushes (producer stalls on full FIFO).
    pub full_stalls: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
    /// Occupancy at snapshot time.
    pub occupancy: usize,
}

impl ChannelStats {
    /// Items still in flight (pushed but never popped).
    pub fn in_flight(&self) -> u64 {
        self.pushes - self.pops
    }
}

/// Allocation-free sum of every channel's statistics, folded with the same
/// per-reader expansion as [`SimContext::channel_stats`]
/// (one row per plain channel, one per broadcast reader tap) but without
/// cloning any debug name. This is what a periodic observability publish
/// reads: the full [`ChannelStats`] snapshot costs one `String` per
/// channel per call, which a per-poll cadence cannot afford.
///
/// [`SimContext::channel_stats`]: crate::SimContext::channel_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelAggregate {
    /// Total successful pushes (broadcast pushes counted once per tap).
    pub pushes: u64,
    /// Total successful pops.
    pub pops: u64,
    /// Total rejected pushes (producer stalls on full FIFOs).
    pub full_stalls: u64,
    /// Highest occupancy high-water mark of any single channel/tap.
    pub max_occupancy: usize,
    /// Number of (reader-expanded) channels folded in.
    pub channels: usize,
}

pub(crate) struct QueueSlot<T> {
    pub(crate) value: T,
    pub(crate) visible_at: Cycle,
}

/// Outcome of one broadcast-tap receive attempt (see
/// [`SimContext::bcast_recv_or_empty`](crate::SimContext::bcast_recv_or_empty)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapRecv<R> {
    /// A visible item was consumed; `R` is the closure's result, and
    /// `tap_now_empty` says whether this tap has anything left buffered —
    /// letting a consumer park immediately after draining its last item.
    Got {
        /// The closure's result.
        out: R,
        /// `true` when the tap holds no further items after this pop.
        tap_now_empty: bool,
    },
    /// Items are buffered for this tap but none is visible yet at this
    /// cycle.
    NotVisible,
    /// The tap holds no items at all.
    Empty,
}

/// Storage of one plain single-reader channel.
pub(crate) struct ChannelCore<T> {
    pub(crate) name: String,
    pub(crate) capacity: usize,
    pub(crate) latency: u64,
    pub(crate) queue: VecDeque<QueueSlot<T>>,
    pub(crate) pushes: u64,
    pub(crate) pops: u64,
    pub(crate) full_stalls: u64,
    pub(crate) max_occupancy: usize,
}

impl<T> ChannelCore<T> {
    pub(crate) fn new(name: &str, capacity: usize, latency: u64) -> Self {
        assert!(capacity > 0, "channel {name:?} must have nonzero capacity");
        ChannelCore {
            name: name.to_owned(),
            capacity,
            latency,
            queue: VecDeque::with_capacity(capacity.min(4096)),
            pushes: 0,
            pops: 0,
            full_stalls: 0,
            max_occupancy: 0,
        }
    }

    #[inline]
    pub(crate) fn try_send(&mut self, cy: Cycle, value: T) -> Result<(), SendError<T>> {
        if self.queue.len() >= self.capacity {
            self.full_stalls += 1;
            return Err(SendError(value));
        }
        self.queue.push_back(QueueSlot {
            value,
            visible_at: cy + self.latency,
        });
        self.pushes += 1;
        if self.queue.len() > self.max_occupancy {
            self.max_occupancy = self.queue.len();
        }
        Ok(())
    }

    #[inline]
    pub(crate) fn try_recv(&mut self, cy: Cycle) -> Option<T> {
        match self.queue.front() {
            Some(slot) if slot.visible_at <= cy => {
                let slot = self.queue.pop_front().expect("nonempty");
                self.pops += 1;
                Some(slot.value)
            }
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn can_recv(&self, cy: Cycle) -> bool {
        matches!(self.queue.front(), Some(slot) if slot.visible_at <= cy)
    }

    /// Visibility time of the front item, if any. Items are queued with
    /// monotonically non-decreasing visibility, so this is the earliest
    /// cycle at which *any* receive on the channel can succeed — the
    /// fast-forward detector's per-channel event.
    #[inline]
    pub(crate) fn front_visible_at(&self) -> Option<Cycle> {
        self.queue.front().map(|slot| slot.visible_at)
    }

    pub(crate) fn stats(&self) -> ChannelStats {
        ChannelStats {
            name: self.name.clone(),
            capacity: self.capacity,
            pushes: self.pushes,
            pops: self.pops,
            full_stalls: self.full_stalls,
            max_occupancy: self.max_occupancy,
            occupancy: self.queue.len(),
        }
    }

    pub(crate) fn accumulate(&self, agg: &mut ChannelAggregate) {
        agg.pushes += self.pushes;
        agg.pops += self.pops;
        agg.full_stalls += self.full_stalls;
        agg.max_occupancy = agg.max_occupancy.max(self.max_occupancy);
        agg.channels += 1;
    }
}

/// Relevance function of a broadcast channel: returns the bitmask of
/// reader taps (bit `r` = tap `r`) the item is *relevant* to. Taps outside
/// the mask see the item as a no-op (a zero destination mask in the
/// wide-word case) and may be *auto-advanced* past when parked — cursor
/// and statistics bookkeeping inside the core, without ever waking the
/// tap's consumer kernel. One function call classifies the item for every
/// tap at once. See
/// [`Engine::broadcast_channel_with_relevance`](crate::Engine::broadcast_channel_with_relevance).
pub type TapRelevance<T> = fn(&T) -> u64;

/// Storage of one broadcast channel: a single queue with `R` reader cursors.
///
/// Sequence numbers are absolute: the front of `queue` holds sequence
/// `base_seq`, and reader `r` will next consume sequence `cursors[r]`. An
/// item is dropped once every cursor has moved past it, so each value is
/// stored exactly once regardless of the fan-out.
///
/// # Cold taps
///
/// A consumer that parks on an empty tap
/// ([`SimContext::bcast_park`](crate::SimContext::bcast_park)) marks the tap
/// *cold*. While a tap is cold, pushed items that the channel's
/// [`TapRelevance`] predicate declares irrelevant to it do **not** fire the
/// tap's push wakes; instead the engine auto-advances the cursor (with full
/// pop/occupancy bookkeeping) at the end of the cycle in which the item
/// becomes visible — exactly when the parked consumer would have consumed
/// the no-op item had it been woken. A relevant push clears the cold flag
/// and wakes the tap normally, and any direct receive on a cold tap also
/// clears it (the consumer has taken over). Invariant: while a tap is cold,
/// every item buffered for it is irrelevant, because the flag is only set on
/// an empty tap and cleared by the first relevant push.
pub(crate) struct BroadcastCore<T> {
    pub(crate) name_prefix: String,
    pub(crate) capacity: usize,
    pub(crate) latency: u64,
    pub(crate) queue: VecDeque<QueueSlot<T>>,
    pub(crate) base_seq: u64,
    pub(crate) cursors: Vec<u64>,
    /// Readers whose cursor still equals `base_seq` (fast front-release).
    pub(crate) front_waiters: u32,
    pub(crate) pushes: u64,
    pub(crate) pops: Vec<u64>,
    pub(crate) full_stalls: u64,
    pub(crate) max_occupancy: Vec<usize>,
    /// Per-item relevance-mask function for the cold-tap auto-advance;
    /// `None` disables auto-advance (parked taps are then woken by every
    /// push).
    pub(crate) relevance: Option<TapRelevance<T>>,
    /// Bit `r` set ⇔ tap `r` is cold: its consumer is parked and every
    /// item buffered for it is irrelevant (see the type-level docs).
    pub(crate) cold_mask: u64,
    /// Visibility boundary maintained by [`catch_up`](Self::catch_up):
    /// sequence number of the first item not yet visible at the last
    /// catch-up cycle. Items are queued in push order with monotonically
    /// increasing visibility, so every sequence below the boundary is
    /// consumable and a cold tap batch-advances to it in O(1) — no
    /// per-item queue probing.
    visible_seq: u64,
}

impl<T> BroadcastCore<T> {
    pub(crate) fn new(name_prefix: &str, readers: usize, capacity: usize, latency: u64) -> Self {
        assert!(
            capacity > 0,
            "broadcast {name_prefix:?} must have nonzero capacity"
        );
        assert!(
            readers > 0,
            "broadcast {name_prefix:?} needs at least one reader"
        );
        BroadcastCore {
            name_prefix: name_prefix.to_owned(),
            capacity,
            latency,
            queue: VecDeque::with_capacity(capacity.min(4096)),
            base_seq: 0,
            cursors: vec![0; readers],
            front_waiters: readers as u32,
            pushes: 0,
            pops: vec![0; readers],
            full_stalls: 0,
            max_occupancy: vec![0; readers],
            relevance: None,
            cold_mask: 0,
            visible_seq: 0,
        }
    }

    /// Installs the relevance-mask function enabling cold-tap auto-advance.
    ///
    /// # Panics
    ///
    /// Panics if the channel has more than 64 reader taps — the cold set
    /// and relevance masks are single words.
    pub(crate) fn with_relevance(mut self, relevance: TapRelevance<T>) -> Self {
        assert!(
            self.cursors.len() <= 64,
            "{}: auto-advance supports at most 64 reader taps",
            self.name_prefix
        );
        self.relevance = Some(relevance);
        self
    }

    #[inline]
    fn head_seq(&self) -> u64 {
        self.base_seq + self.queue.len() as u64
    }

    /// Occupancy as seen by reader `r` (items pushed, not yet consumed).
    #[inline]
    pub(crate) fn occupancy(&self, r: usize) -> usize {
        (self.head_seq() - self.cursors[r]) as usize
    }

    /// `true` when every reader tap has room for one more item.
    ///
    /// `release_front` keeps `base_seq` equal to the slowest cursor, so the
    /// fullest tap's occupancy is exactly `queue.len()` — one comparison,
    /// no cursor scan.
    #[inline]
    pub(crate) fn can_send_all(&self) -> bool {
        self.queue.len() < self.capacity
    }

    #[inline]
    pub(crate) fn try_send(&mut self, cy: Cycle, value: T) -> Result<(), SendError<T>> {
        if !self.can_send_all() {
            self.full_stalls += 1;
            return Err(SendError(value));
        }
        self.queue.push_back(QueueSlot {
            value,
            visible_at: cy + self.latency,
        });
        self.pushes += 1;
        let head = self.head_seq();
        for (r, &c) in self.cursors.iter().enumerate() {
            let occ = (head - c) as usize;
            if occ > self.max_occupancy[r] {
                self.max_occupancy[r] = occ;
            }
        }
        Ok(())
    }

    /// Like [`recv_map`](Self::recv_map) but also distinguishes "tap
    /// completely empty" from "item buffered but not yet visible", in one
    /// resolution of the arena slot.
    #[inline]
    pub(crate) fn recv_or_empty<R>(
        &mut self,
        cy: Cycle,
        r: usize,
        f: impl FnOnce(&T) -> R,
    ) -> TapRecv<R> {
        if self.occupancy(r) == 0 {
            return TapRecv::Empty;
        }
        match self.recv_map(cy, r, f) {
            Some(out) => TapRecv::Got {
                out,
                tap_now_empty: self.occupancy(r) == 0,
            },
            None => TapRecv::NotVisible,
        }
    }

    /// Applies `f` to the item at reader `r`'s cursor if it is visible at
    /// `cy`, advancing the cursor. A successful receive on a cold tap also
    /// clears the cold flag — the consumer has visibly taken over.
    #[inline]
    pub(crate) fn recv_map<R>(
        &mut self,
        cy: Cycle,
        r: usize,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        let cursor = self.cursors[r];
        let offset = (cursor - self.base_seq) as usize;
        let slot = self.queue.get(offset)?;
        if slot.visible_at > cy {
            return None;
        }
        let out = f(&slot.value);
        self.unpark(r);
        self.advance_cursor(r);
        Some(out)
    }

    /// Pop bookkeeping for reader `r`'s cursor: cursor, pop count and
    /// front-release accounting — shared by kernel receives and the
    /// cold-tap auto-advance.
    #[inline]
    fn advance_cursor(&mut self, r: usize) {
        let cursor = self.cursors[r];
        self.cursors[r] = cursor + 1;
        self.pops[r] += 1;
        if cursor == self.base_seq {
            self.front_waiters -= 1;
            if self.front_waiters == 0 {
                self.release_front();
            }
        }
    }

    /// Marks tap `r` cold: its consumer parked on it while it was empty.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the tap still buffers items — the cold
    /// invariant requires an empty tap at park time.
    pub(crate) fn park(&mut self, r: usize) {
        debug_assert_eq!(
            self.occupancy(r),
            0,
            "{}{r}: a tap may only be parked while empty",
            self.name_prefix
        );
        if r < 64 {
            self.cold_mask |= 1 << r;
        }
    }

    /// Clears tap `r`'s cold flag (relevant push or direct receive).
    #[inline]
    pub(crate) fn unpark(&mut self, r: usize) {
        if r < 64 {
            self.cold_mask &= !(1u64 << r);
        }
    }

    /// The relevance mask of the just-pushed item (the queue's back) —
    /// without a relevance function every item is relevant to every tap.
    #[inline]
    pub(crate) fn newest_relevance(&self) -> u64 {
        match (self.relevance, self.queue.back()) {
            (Some(f), Some(slot)) => f(&slot.value),
            _ => u64::MAX,
        }
    }

    /// Auto-advances every cold tap past its visible irrelevant items,
    /// returning the number of pops applied. Called by the engine at the
    /// end of each cycle `cy`, which is observationally the moment the
    /// parked consumer would have popped the no-op item itself (consumers
    /// step after the producer within a cycle and drain one item per
    /// cycle; successive pushes have strictly increasing visibility times).
    pub(crate) fn catch_up(&mut self, cy: Cycle) -> u64 {
        // Readers may have popped (and the front released) past a stale
        // boundary during the cycle; everything below `base_seq` was
        // visible, so the boundary resumes there.
        if self.visible_seq < self.base_seq {
            self.visible_seq = self.base_seq;
        }
        // Advance the visibility boundary (amortised O(1): at most one
        // push lands per producer per cycle).
        loop {
            let offset = (self.visible_seq - self.base_seq) as usize;
            match self.queue.get(offset) {
                Some(slot) if slot.visible_at <= cy => self.visible_seq += 1,
                _ => break,
            }
        }
        let target = self.visible_seq;
        let mut applied = 0;
        let mut cold = self.cold_mask;
        while cold != 0 {
            let r = cold.trailing_zeros() as usize;
            cold &= cold - 1;
            let cursor = self.cursors[r];
            if cursor < target {
                // Batch pop bookkeeping: every sequence in
                // `cursor..target` is visible and (cold invariant)
                // irrelevant to this tap.
                self.cursors[r] = target;
                self.pops[r] += target - cursor;
                applied += target - cursor;
                if cursor == self.base_seq {
                    self.front_waiters -= 1;
                    if self.front_waiters == 0 {
                        self.release_front();
                    }
                }
            }
        }
        applied
    }

    #[inline]
    pub(crate) fn can_recv(&self, cy: Cycle, r: usize) -> bool {
        let offset = (self.cursors[r] - self.base_seq) as usize;
        matches!(self.queue.get(offset), Some(slot) if slot.visible_at <= cy)
    }

    /// Visibility time of the item at reader `r`'s cursor, if any — the
    /// earliest cycle at which a receive on this tap can succeed (the
    /// fast-forward detector's per-tap event).
    #[inline]
    pub(crate) fn tap_front_visible_at(&self, r: usize) -> Option<Cycle> {
        let offset = (self.cursors[r] - self.base_seq) as usize;
        self.queue.get(offset).map(|slot| slot.visible_at)
    }

    /// Earliest cycle at which [`catch_up`](Self::catch_up) could apply
    /// pops: the visibility time of the item at the boundary, while any tap
    /// is cold. Conservative — the returned cycle's catch-up may turn out
    /// to apply nothing (e.g. every cold cursor is already past the
    /// boundary) — but never *later* than a catch-up that pops, which is
    /// what the fast-forward jump must not skip over.
    pub(crate) fn next_cold_event(&self) -> Option<Cycle> {
        if self.cold_mask == 0 {
            return None;
        }
        let boundary = self.visible_seq.max(self.base_seq);
        let offset = (boundary - self.base_seq) as usize;
        self.queue.get(offset).map(|slot| slot.visible_at)
    }

    /// Drops fully-consumed items from the front of the queue. The slowest
    /// cursor always lands on the new front, so `front_waiters` ends ≥ 1.
    fn release_front(&mut self) {
        let min = *self.cursors.iter().min().expect("readers > 0");
        debug_assert!(min >= self.base_seq);
        for _ in 0..(min - self.base_seq) as usize {
            self.queue.pop_front();
        }
        self.base_seq = min;
        self.front_waiters = self.cursors.iter().filter(|&&c| c == min).count() as u32;
    }

    pub(crate) fn reader_stats(&self, r: usize) -> ChannelStats {
        ChannelStats {
            name: format!("{}{}", self.name_prefix, r),
            capacity: self.capacity,
            pushes: self.pushes,
            pops: self.pops[r],
            full_stalls: self.full_stalls,
            max_occupancy: self.max_occupancy[r],
            occupancy: self.occupancy(r),
        }
    }

    pub(crate) fn accumulate(&self, agg: &mut ChannelAggregate) {
        for r in 0..self.cursors.len() {
            agg.pushes += self.pushes;
            agg.pops += self.pops[r];
            agg.full_stalls += self.full_stalls;
            agg.max_occupancy = agg.max_occupancy.max(self.max_occupancy[r]);
            agg.channels += 1;
        }
    }
}

/// Type-erased arena slot: the concrete `ChannelCore<T>`/`BroadcastCore<T>`
/// behind a plain `dyn Any` (one `TypeId` compare per access, no extra
/// virtual hop), plus a monomorphised stats reporter and — for broadcast
/// channels with a relevance predicate — a monomorphised cold-tap
/// catch-up hook the engine calls at the end of each cycle.
pub(crate) struct ArenaSlot {
    pub(crate) core: Box<dyn Any + Send>,
    stats_fn: fn(&dyn Any, &mut Vec<ChannelStats>),
    totals_fn: fn(&dyn Any, &mut ChannelAggregate),
    /// `Some` only for auto-advancing broadcast slots.
    pub(crate) advance_fn: Option<fn(&mut dyn Any, Cycle) -> u64>,
    /// Earliest upcoming cold-tap catch-up event of an auto-advancing
    /// broadcast slot (`Some` exactly when `advance_fn` is) — consulted by
    /// the fast-forward detector so a jump never skips a cycle whose
    /// end-of-cycle catch-up would pop (and possibly fire wakes).
    pub(crate) next_event_fn: Option<fn(&dyn Any) -> Option<Cycle>>,
}

impl ArenaSlot {
    pub(crate) fn plain<T: Send + 'static>(core: ChannelCore<T>) -> Self {
        fn report<T: Send + 'static>(any: &dyn Any, out: &mut Vec<ChannelStats>) {
            let core = any.downcast_ref::<ChannelCore<T>>().expect("slot type");
            out.push(core.stats());
        }
        fn totals<T: Send + 'static>(any: &dyn Any, agg: &mut ChannelAggregate) {
            let core = any.downcast_ref::<ChannelCore<T>>().expect("slot type");
            core.accumulate(agg);
        }
        ArenaSlot {
            core: Box::new(core),
            stats_fn: report::<T>,
            totals_fn: totals::<T>,
            advance_fn: None,
            next_event_fn: None,
        }
    }

    pub(crate) fn broadcast<T: Send + 'static>(core: BroadcastCore<T>) -> Self {
        fn report<T: Send + 'static>(any: &dyn Any, out: &mut Vec<ChannelStats>) {
            let core = any.downcast_ref::<BroadcastCore<T>>().expect("slot type");
            for r in 0..core.cursors.len() {
                out.push(core.reader_stats(r));
            }
        }
        fn advance<T: Send + 'static>(any: &mut dyn Any, cy: Cycle) -> u64 {
            let core = any.downcast_mut::<BroadcastCore<T>>().expect("slot type");
            core.catch_up(cy)
        }
        fn next_event<T: Send + 'static>(any: &dyn Any) -> Option<Cycle> {
            let core = any.downcast_ref::<BroadcastCore<T>>().expect("slot type");
            core.next_cold_event()
        }
        fn totals<T: Send + 'static>(any: &dyn Any, agg: &mut ChannelAggregate) {
            let core = any.downcast_ref::<BroadcastCore<T>>().expect("slot type");
            core.accumulate(agg);
        }
        let auto = core.relevance.is_some();
        ArenaSlot {
            core: Box::new(core),
            stats_fn: report::<T>,
            totals_fn: totals::<T>,
            advance_fn: auto.then_some(advance::<T> as _),
            next_event_fn: auto.then_some(next_event::<T> as _),
        }
    }

    pub(crate) fn push_stats(&self, out: &mut Vec<ChannelStats>) {
        (self.stats_fn)(&*self.core, out);
    }

    pub(crate) fn push_totals(&self, agg: &mut ChannelAggregate) {
        (self.totals_fn)(&*self.core, agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_fifo_order_is_preserved() {
        let mut ch = ChannelCore::new("t", 8, DEFAULT_LATENCY);
        for i in 0..5 {
            ch.try_send(0, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(ch.try_recv(10), Some(i));
        }
        assert_eq!(ch.try_recv(10), None);
    }

    #[test]
    fn core_latency_hides_fresh_items() {
        let mut ch = ChannelCore::new("t", 4, 3);
        ch.try_send(5, 42).unwrap();
        assert_eq!(ch.try_recv(5), None);
        assert_eq!(ch.try_recv(7), None);
        assert!(!ch.can_recv(7));
        assert_eq!(ch.try_recv(8), Some(42));
    }

    #[test]
    fn core_full_channel_rejects_and_counts_stalls() {
        let mut ch = ChannelCore::new("t", 2, 1);
        ch.try_send(0, 'a').unwrap();
        ch.try_send(0, 'b').unwrap();
        assert_eq!(ch.try_send(0, 'c'), Err(SendError('c')));
        assert_eq!(ch.try_send(0, 'd'), Err(SendError('d')));
        let st = ch.stats();
        assert_eq!(st.full_stalls, 2);
        assert_eq!(st.pushes, 2);
        assert_eq!(st.max_occupancy, 2);
        assert_eq!(st.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn core_zero_capacity_panics() {
        let _ = ChannelCore::<u8>::new("bad", 0, 1);
    }

    #[test]
    fn broadcast_readers_see_every_item_once() {
        let mut b = BroadcastCore::new("w", 3, 4, 1);
        b.try_send(0, 7u32).unwrap();
        b.try_send(0, 8u32).unwrap();
        for r in 0..3 {
            assert_eq!(b.recv_map(5, r, |&v| v), Some(7));
            assert_eq!(b.recv_map(5, r, |&v| v), Some(8));
            assert_eq!(b.recv_map(5, r, |&v| v), None);
        }
        assert_eq!(b.queue.len(), 0, "fully consumed items are released");
        assert_eq!(b.pushes, 2);
        assert_eq!(b.pops, vec![2, 2, 2]);
    }

    #[test]
    fn broadcast_slowest_reader_gates_capacity() {
        let mut b = BroadcastCore::new("w", 2, 2, 1);
        b.try_send(0, 1u8).unwrap();
        b.try_send(0, 2u8).unwrap();
        // Reader 0 drains fully; reader 1 does not move.
        assert_eq!(b.recv_map(3, 0, |&v| v), Some(1));
        assert_eq!(b.recv_map(3, 0, |&v| v), Some(2));
        assert!(!b.can_send_all(), "reader 1 still at capacity");
        assert!(b.try_send(3, 3u8).is_err());
        assert_eq!(b.full_stalls, 1);
        // Reader 1 frees one slot.
        assert_eq!(b.recv_map(4, 1, |&v| v), Some(1));
        assert!(b.can_send_all());
        b.try_send(4, 3u8).unwrap();
        assert_eq!(b.occupancy(0), 1);
        assert_eq!(b.occupancy(1), 2);
    }

    #[test]
    fn broadcast_latency_applies_per_item() {
        let mut b = BroadcastCore::new("w", 2, 4, 2);
        b.try_send(10, 5u8).unwrap();
        assert!(!b.can_recv(11, 0));
        assert_eq!(b.recv_map(11, 0, |&v| v), None);
        assert_eq!(b.recv_map(12, 0, |&v| v), Some(5));
    }

    #[test]
    fn broadcast_per_reader_stats() {
        let mut b = BroadcastCore::new("word", 2, 8, 1);
        b.try_send(0, 1u8).unwrap();
        b.try_send(0, 2u8).unwrap();
        b.recv_map(5, 0, |_| ()).unwrap();
        let s0 = b.reader_stats(0);
        let s1 = b.reader_stats(1);
        assert_eq!(s0.name, "word0");
        assert_eq!(s1.name, "word1");
        assert_eq!(s0.pushes, 2);
        assert_eq!(s1.pushes, 2);
        assert_eq!(s0.pops, 1);
        assert_eq!(s1.pops, 0);
        assert_eq!(s0.occupancy, 1);
        assert_eq!(s1.occupancy, 2);
        assert_eq!(s0.max_occupancy, 2);
    }
}
