//! Bounded, latency-aware FIFO channels connecting kernels.
//!
//! A [`Channel`] models an HLS `cl_channel`: a hardware FIFO with a fixed
//! capacity (the paper sizes PE input queues at a few hundred entries) and a
//! visibility latency of at least one cycle, so that a value written in cycle
//! `c` is readable in `c + latency` at the earliest. Producers observe
//! backpressure through [`Sender::try_send`] returning [`SendError::Full`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::Cycle;

/// Default visibility latency for newly created channels, in cycles.
pub const DEFAULT_LATENCY: u64 = 1;

struct Slot<T> {
    value: T,
    visible_at: Cycle,
}

struct Inner<T> {
    name: String,
    capacity: usize,
    latency: u64,
    queue: VecDeque<Slot<T>>,
    // -- statistics --
    pushes: u64,
    pops: u64,
    full_stalls: u64,
    max_occupancy: usize,
}

impl<T> Inner<T> {
    fn occupancy(&self) -> usize {
        self.queue.len()
    }
}

/// A bounded FIFO channel with visibility latency, mirroring an HLS
/// `cl_channel` FIFO between two autorun kernels.
///
/// Construct one with [`Channel::new`] (latency 1) or
/// [`Channel::with_latency`], then split it into endpoint handles with
/// [`Channel::endpoints`]. Handles are cheaply cloneable and share the same
/// underlying queue; the simulation is single-threaded, matching the
/// deterministic clocked hardware it models.
///
/// # Example
///
/// ```
/// use hls_sim::Channel;
///
/// let ch = Channel::new("tuples", 2);
/// let (tx, rx) = ch.endpoints();
/// tx.try_send(0, 7u32).unwrap();
/// tx.try_send(0, 8u32).unwrap();
/// assert!(tx.try_send(0, 9u32).is_err()); // capacity 2 -> stall
/// assert_eq!(rx.try_recv(0), None);       // latency 1: not visible yet
/// assert_eq!(rx.try_recv(1), Some(7));
/// ```
pub struct Channel<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Channel<T> {
    /// Creates a channel with the given debug `name` and `capacity`, using the
    /// default visibility latency of one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity FIFO cannot transfer
    /// data under stall-on-full semantics.
    pub fn new(name: &str, capacity: usize) -> Self {
        Self::with_latency(name, capacity, DEFAULT_LATENCY)
    }

    /// Creates a channel with an explicit visibility `latency` in cycles.
    ///
    /// A latency of zero permits same-cycle forwarding (useful for purely
    /// combinational adapters); hardware FIFOs use at least one.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_latency(name: &str, capacity: usize, latency: u64) -> Self {
        assert!(capacity > 0, "channel {name:?} must have nonzero capacity");
        Channel {
            inner: Rc::new(RefCell::new(Inner {
                name: name.to_owned(),
                capacity,
                latency,
                queue: VecDeque::with_capacity(capacity.min(4096)),
                pushes: 0,
                pops: 0,
                full_stalls: 0,
                max_occupancy: 0,
            })),
        }
    }

    /// Splits the channel into a `(Sender, Receiver)` pair.
    ///
    /// May be called repeatedly; all handles alias the same FIFO.
    pub fn endpoints(&self) -> (Sender<T>, Receiver<T>) {
        (self.sender(), self.receiver())
    }

    /// Returns a producer handle.
    pub fn sender(&self) -> Sender<T> {
        Sender { inner: Rc::clone(&self.inner) }
    }

    /// Returns a consumer handle.
    pub fn receiver(&self) -> Receiver<T> {
        Receiver { inner: Rc::clone(&self.inner) }
    }

    /// Takes a snapshot of the channel's lifetime statistics.
    pub fn stats(&self) -> ChannelStats {
        let inner = self.inner.borrow();
        ChannelStats {
            name: inner.name.clone(),
            capacity: inner.capacity,
            pushes: inner.pushes,
            pops: inner.pops,
            full_stalls: inner.full_stalls,
            max_occupancy: inner.max_occupancy,
            occupancy: inner.occupancy(),
        }
    }
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel { inner: Rc::clone(&self.inner) }
    }
}

impl<T> fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Channel")
            .field("name", &inner.name)
            .field("capacity", &inner.capacity)
            .field("occupancy", &inner.occupancy())
            .finish()
    }
}

/// Error returned by [`Sender::try_send`] when the FIFO is full.
///
/// Carries the rejected value back to the caller so it can be retried next
/// cycle without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel full")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Producer endpoint of a [`Channel`].
pub struct Sender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Sender<T> {
    /// Attempts to push `value` at cycle `cy`.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding the value if the FIFO is at capacity;
    /// the producing kernel should treat that as a pipeline stall and retry
    /// on a later cycle. Each failed attempt is counted as a *full stall* in
    /// the channel statistics.
    pub fn try_send(&self, cy: Cycle, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.borrow_mut();
        if inner.queue.len() >= inner.capacity {
            inner.full_stalls += 1;
            return Err(SendError(value));
        }
        let visible_at = cy + inner.latency;
        inner.queue.push_back(Slot { value, visible_at });
        inner.pushes += 1;
        let occ = inner.occupancy();
        if occ > inner.max_occupancy {
            inner.max_occupancy = occ;
        }
        Ok(())
    }

    /// Returns how many more items the FIFO can accept right now.
    pub fn free_space(&self) -> usize {
        let inner = self.inner.borrow();
        inner.capacity - inner.queue.len()
    }

    /// Returns `true` when at least one item can be pushed.
    pub fn can_send(&self) -> bool {
        self.free_space() > 0
    }

    /// Returns `true` when the FIFO currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().queue.is_empty()
    }

    /// The channel's debug name.
    pub fn channel_name(&self) -> String {
        self.inner.borrow().name.clone()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: Rc::clone(&self.inner) }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender({})", self.inner.borrow().name)
    }
}

/// Consumer endpoint of a [`Channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Receiver<T> {
    /// Pops the oldest item if one is visible at cycle `cy`.
    ///
    /// Returns `None` when the FIFO is empty *or* its head was pushed less
    /// than `latency` cycles ago.
    pub fn try_recv(&self, cy: Cycle) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        match inner.queue.front() {
            Some(slot) if slot.visible_at <= cy => {
                let slot = inner.queue.pop_front().expect("nonempty");
                inner.pops += 1;
                Some(slot.value)
            }
            _ => None,
        }
    }

    /// Returns `true` if an item is visible at cycle `cy`.
    pub fn can_recv(&self, cy: Cycle) -> bool {
        let inner = self.inner.borrow();
        matches!(inner.queue.front(), Some(slot) if slot.visible_at <= cy)
    }

    /// Returns `true` when the FIFO holds no items at all (visible or not).
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().queue.is_empty()
    }

    /// Number of items currently buffered (visible or not).
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// The channel's debug name.
    pub fn channel_name(&self) -> String {
        self.inner.borrow().name.clone()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { inner: Rc::clone(&self.inner) }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver({})", self.inner.borrow().name)
    }
}

/// A point-in-time snapshot of a channel's lifetime statistics.
///
/// Produced by [`Channel::stats`]; used by the experiment harness to report
/// stall behaviour (e.g. how skew fills a hot PE's queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Debug name given at construction.
    pub name: String,
    /// Configured capacity.
    pub capacity: usize,
    /// Total successful pushes.
    pub pushes: u64,
    /// Total successful pops.
    pub pops: u64,
    /// Number of rejected pushes (producer stalls on full FIFO).
    pub full_stalls: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
    /// Occupancy at snapshot time.
    pub occupancy: usize,
}

impl ChannelStats {
    /// Items still in flight (pushed but never popped).
    pub fn in_flight(&self) -> u64 {
        self.pushes - self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let ch = Channel::new("t", 8);
        let (tx, rx) = ch.endpoints();
        for i in 0..5 {
            tx.try_send(0, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.try_recv(10), Some(i));
        }
        assert_eq!(rx.try_recv(10), None);
    }

    #[test]
    fn latency_hides_fresh_items() {
        let ch = Channel::with_latency("t", 4, 3);
        let (tx, rx) = ch.endpoints();
        tx.try_send(5, 42).unwrap();
        assert_eq!(rx.try_recv(5), None);
        assert_eq!(rx.try_recv(7), None);
        assert!(!rx.can_recv(7));
        assert_eq!(rx.try_recv(8), Some(42));
    }

    #[test]
    fn zero_latency_allows_same_cycle_forwarding() {
        let ch = Channel::with_latency("t", 4, 0);
        let (tx, rx) = ch.endpoints();
        tx.try_send(9, 1).unwrap();
        assert_eq!(rx.try_recv(9), Some(1));
    }

    #[test]
    fn full_channel_rejects_and_counts_stalls() {
        let ch = Channel::new("t", 2);
        let (tx, _rx) = ch.endpoints();
        tx.try_send(0, 'a').unwrap();
        tx.try_send(0, 'b').unwrap();
        assert_eq!(tx.try_send(0, 'c'), Err(SendError('c')));
        assert_eq!(tx.try_send(0, 'd'), Err(SendError('d')));
        let st = ch.stats();
        assert_eq!(st.full_stalls, 2);
        assert_eq!(st.pushes, 2);
        assert_eq!(st.max_occupancy, 2);
    }

    #[test]
    fn stats_track_in_flight() {
        let ch = Channel::new("t", 8);
        let (tx, rx) = ch.endpoints();
        for i in 0..6 {
            tx.try_send(0, i).unwrap();
        }
        for _ in 0..2 {
            rx.try_recv(1).unwrap();
        }
        let st = ch.stats();
        assert_eq!(st.in_flight(), 4);
        assert_eq!(st.occupancy, 4);
    }

    #[test]
    fn capacity_frees_after_pop() {
        let ch = Channel::new("t", 1);
        let (tx, rx) = ch.endpoints();
        tx.try_send(0, 1).unwrap();
        assert!(tx.try_send(0, 2).is_err());
        assert_eq!(rx.try_recv(1), Some(1));
        assert!(tx.try_send(1, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_panics() {
        let _ = Channel::<u8>::new("bad", 0);
    }
}
