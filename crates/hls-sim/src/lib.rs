//! # hls-sim — a cycle-level kernels-and-channels dataflow simulator
//!
//! This crate models the execution substrate that the Ditto paper's
//! accelerators run on: Intel-OpenCL-for-FPGA style *autorun kernels*
//! connected by bounded *channels* (`cl_channel`). Every hardware module in
//! the paper (PrePE, mapper, combiner, decoder/filter, PriPE/SecPE, runtime
//! profiler, merger) becomes a [`Kernel`] stepped once per clock cycle by the
//! [`Engine`]; every arrow in the paper's Fig. 3 becomes a [`Channel`].
//!
//! The simulator is deliberately simple and fully deterministic:
//!
//! * a [`Channel`] has a bounded capacity and a visibility latency — an item
//!   pushed at cycle `c` can be popped at `c + latency` or later, and a full
//!   channel makes the producer stall (this stall-on-full backpressure is the
//!   single mechanism behind the paper's skew-induced throughput collapse);
//! * kernels are stepped in registration order, once per cycle; all
//!   cross-kernel communication goes through channels, so step order only
//!   affects pipeline latency by ±1 cycle, never results;
//! * there is no randomness anywhere in the engine.
//!
//! Throughput numbers are measured in items per cycle and converted to wall
//! clock by the `fpga-model` crate's frequency model.
//!
//! # Example
//!
//! A two-stage pipeline: a producer streams numbers into a channel, a consumer
//! accumulates them.
//!
//! ```
//! use hls_sim::{Channel, Cycle, Engine, Kernel};
//!
//! struct Producer { tx: hls_sim::Sender<u64>, next: u64, count: u64 }
//! impl Kernel for Producer {
//!     fn name(&self) -> &str { "producer" }
//!     fn step(&mut self, cy: Cycle) {
//!         if self.next < self.count && self.tx.try_send(cy, self.next).is_ok() {
//!             self.next += 1;
//!         }
//!     }
//!     fn is_idle(&self) -> bool { self.next == self.count }
//! }
//!
//! struct Consumer { rx: hls_sim::Receiver<u64>, sum: std::rc::Rc<std::cell::Cell<u64>> }
//! impl Kernel for Consumer {
//!     fn name(&self) -> &str { "consumer" }
//!     fn step(&mut self, cy: Cycle) {
//!         if let Some(v) = self.rx.try_recv(cy) {
//!             self.sum.set(self.sum.get() + v);
//!         }
//!     }
//!     fn is_idle(&self) -> bool { self.rx.is_empty() }
//! }
//!
//! let ch = Channel::new("link", 4);
//! let (tx, rx) = ch.endpoints();
//! let sum = std::rc::Rc::new(std::cell::Cell::new(0));
//! let mut engine = Engine::new();
//! engine.add_kernel(Producer { tx, next: 0, count: 10 });
//! engine.add_kernel(Consumer { rx, sum: sum.clone() });
//! let report = engine.run_until_quiescent(1_000);
//! assert_eq!(sum.get(), 45);
//! assert!(report.cycles < 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod engine;
mod kernel;
mod memory;
mod stats;

pub use channel::{Channel, ChannelStats, Receiver, SendError, Sender};
pub use engine::{Engine, RunReport};
pub use kernel::Kernel;
pub use memory::{MemoryModel, RateLimiter, SliceSource, StreamSource};
pub use stats::{Counter, ThroughputWindow};

/// Simulation time, measured in clock cycles since engine start.
pub type Cycle = u64;
