//! # hls-sim — a cycle-level kernels-and-channels dataflow simulator
//!
//! This crate models the execution substrate that the Ditto paper's
//! accelerators run on: Intel-OpenCL-for-FPGA style *autorun kernels*
//! connected by bounded *channels* (`cl_channel`). Every hardware module in
//! the paper (PrePE, mapper, combiner, decoder/filter, PriPE/SecPE, runtime
//! profiler, merger) becomes a [`Kernel`] stepped once per clock cycle by the
//! [`Engine`]; every arrow in the paper's Fig. 3 becomes a channel in the
//! engine's arena.
//!
//! The simulator is deliberately simple and fully deterministic:
//!
//! * channels live in a typed **channel arena** owned by the engine's
//!   [`SimContext`]; kernels hold plain-`Copy` [`SenderId`]/[`ReceiverId`]
//!   handles and resolve them through the context passed to `step` — no
//!   reference counting or interior mutability on the hot path, and the
//!   whole engine is `Send` so scenario sweeps parallelise across threads;
//! * kernel *state* lives in a typed **state arena** next to the channels:
//!   PE buffers, shared plans and counters are allocated at build time
//!   ([`Engine::state`], [`Engine::counter`]) and addressed through `Copy`
//!   [`StateId`]/[`CounterId`] handles — no `Arc<Mutex<…>>` and no shared
//!   atomics anywhere on the per-cycle step path; states several kernels
//!   cooperate on (a PE's private buffer, the scheduling plan) are just
//!   registers both hold the id of;
//! * a channel has a bounded capacity and a visibility latency — an item
//!   pushed at cycle `c` can be popped at `c + latency` or later, and a full
//!   channel makes the producer stall (this stall-on-full backpressure is the
//!   single mechanism behind the paper's skew-induced throughput collapse);
//! * awake kernels are stepped in registration order, once per cycle; a
//!   kernel whose step is provably a no-op until new channel activity can
//!   return [`Progress::Sleep`] and is skipped until a subscribed event
//!   wakes it (the **idle-set scheduler**) — observationally identical to
//!   stepping everyone, but mostly-quiescent pipelines (the common case
//!   under skew) cost only their active set. The scheduler maintains the
//!   active-set size on every sleep/wake transition, so
//!   [`Engine::active_kernels`] is O(1) and the per-cycle loop and
//!   quiescence checks are bounded by the live count (ending at the last
//!   awake kernel rather than scanning the whole population — see
//!   [`Engine::step`] for why a materialized active list was rejected);
//! * a [broadcast channel](Engine::broadcast_channel) fans one value out to
//!   `R` reader taps while storing it once — the combiner's wide-word
//!   duplication without `R` copies. With a [relevance
//!   predicate](Engine::broadcast_channel_with_relevance), items that are
//!   no-ops for a [parked](SimContext::bcast_park) tap (zero destination
//!   mask) are **auto-advanced** inside the core — cursor and statistics
//!   bookkeeping at exactly the cycle the consumer would have consumed
//!   them, without ever waking it — so under skew the cold datapaths cost
//!   nothing per word;
//! * there is no randomness anywhere in the engine.
//!
//! Throughput numbers are measured in items per cycle and converted to wall
//! clock by the `fpga-model` crate's frequency model.
//!
//! # Example
//!
//! A two-stage pipeline: a producer streams numbers into a channel, a
//! consumer accumulates them into an arena counter the harness reads back
//! after the run.
//!
//! ```
//! use hls_sim::{
//!     CounterId, Cycle, Engine, Kernel, Progress, ReceiverId, SenderId, SimContext, WakeSet,
//! };
//!
//! struct Producer { tx: SenderId<u64>, next: u64, count: u64 }
//! impl Kernel for Producer {
//!     fn name(&self) -> &str { "producer" }
//!     fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
//!         if self.next < self.count && ctx.try_send(cy, self.tx, self.next).is_ok() {
//!             self.next += 1;
//!         }
//!         if self.next == self.count { Progress::Sleep } else { Progress::Busy }
//!     }
//!     fn is_idle(&self, _ctx: &SimContext) -> bool { self.next == self.count }
//! }
//!
//! struct Consumer { rx: ReceiverId<u64>, sum: CounterId }
//! impl Kernel for Consumer {
//!     fn name(&self) -> &str { "consumer" }
//!     fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
//!         if let Some(v) = ctx.try_recv(cy, self.rx) {
//!             ctx.counter_add(self.sum, v);
//!             Progress::Busy
//!         } else if ctx.is_empty(self.rx) {
//!             Progress::Sleep // parked until the producer pushes again
//!         } else {
//!             Progress::Busy // item in flight, visible next cycle
//!         }
//!     }
//!     fn is_idle(&self, ctx: &SimContext) -> bool { ctx.is_empty(self.rx) }
//!     fn wake_set(&self) -> WakeSet { WakeSet::new().after_push_on(self.rx) }
//! }
//!
//! let mut engine = Engine::new();
//! let (tx, rx) = engine.channel::<u64>("link", 4);
//! let sum = engine.counter();
//! engine.add_kernel(Producer { tx, next: 0, count: 10 });
//! engine.add_kernel(Consumer { rx, sum });
//! let report = engine.run_until_quiescent(1_000);
//! assert_eq!(engine.context().counter(sum), 45);
//! assert!(report.cycles < 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod context;
mod engine;
mod kernel;
mod memory;
mod state;
mod stats;

pub use channel::{
    BcastReceiverId, BcastSenderId, ChannelAggregate, ChannelStats, RawChannelId, ReceiverId,
    SendError, SenderId, TapRecv, TapRelevance, DEFAULT_LATENCY,
};
pub use context::SimContext;
pub use engine::{Engine, RunReport};
pub use kernel::{Kernel, Progress, WakeSet};
pub use memory::{MemoryModel, PacedSource, RateLimiter, SliceSource, StreamSource};
pub use state::{CounterId, StateId};
pub use stats::ThroughputWindow;

/// Simulation time, measured in clock cycles since engine start.
pub type Cycle = u64;

/// Identifier of a registered kernel (its registration index), returned by
/// [`Engine::add_kernel`] and accepted by [`SimContext::wake_kernel`].
pub type KernelId = u32;
