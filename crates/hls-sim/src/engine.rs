//! The clocked simulation [`Engine`].

use crate::{Cycle, Kernel};

/// Number of consecutive all-idle cycles required before
/// [`Engine::run_until_quiescent`] declares the pipeline drained. Channels
/// have visibility latency, so a single idle observation can be transient.
const QUIESCENT_SETTLE_CYCLES: u64 = 8;

/// Deterministic single-clock simulation engine.
///
/// Owns a set of [`Kernel`]s and steps each of them once per cycle, in
/// registration order. There is no other scheduling policy: the combination
/// of per-cycle stepping and bounded channels is what models a synchronous
/// FPGA pipeline with backpressure.
///
/// # Example
///
/// See the [crate-level example](crate) for a complete two-kernel pipeline.
pub struct Engine {
    kernels: Vec<Box<dyn Kernel>>,
    cycle: Cycle,
}

impl Engine {
    /// Creates an empty engine at cycle zero.
    pub fn new() -> Self {
        Engine { kernels: Vec::new(), cycle: 0 }
    }

    /// Registers a kernel; kernels are stepped in registration order.
    pub fn add_kernel<K: Kernel + 'static>(&mut self, kernel: K) {
        self.kernels.push(Box::new(kernel));
    }

    /// Registers an already-boxed kernel.
    pub fn add_boxed(&mut self, kernel: Box<dyn Kernel>) {
        self.kernels.push(kernel);
    }

    /// The current cycle (the next one to be executed).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Number of registered kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Executes exactly one clock cycle.
    pub fn step(&mut self) {
        let cy = self.cycle;
        for k in &mut self.kernels {
            k.step(cy);
        }
        self.cycle += 1;
    }

    /// Executes `n` clock cycles unconditionally.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until `done()` returns `true`, checking after every cycle, or
    /// until `max_cycles` have elapsed in this call.
    ///
    /// Returns a [`RunReport`] whose `completed` flag distinguishes the two
    /// outcomes.
    pub fn run_until<F: FnMut() -> bool>(&mut self, max_cycles: u64, mut done: F) -> RunReport {
        let start = self.cycle;
        while self.cycle - start < max_cycles {
            self.step();
            if done() {
                return RunReport { cycles: self.cycle - start, completed: true };
            }
        }
        RunReport { cycles: self.cycle - start, completed: false }
    }

    /// Runs until every kernel reports [`Kernel::is_idle`] for a settling
    /// window of consecutive cycles, or until `max_cycles` elapse.
    ///
    /// This is the standard way to drain a pipeline at end of input: sources
    /// become idle once exhausted, intermediate kernels once their queues are
    /// empty, and the settling window covers channel visibility latency.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> RunReport {
        let start = self.cycle;
        let mut idle_streak = 0u64;
        while self.cycle - start < max_cycles {
            self.step();
            if self.kernels.iter().all(|k| k.is_idle()) {
                idle_streak += 1;
                if idle_streak >= QUIESCENT_SETTLE_CYCLES {
                    return RunReport { cycles: self.cycle - start, completed: true };
                }
            } else {
                idle_streak = 0;
            }
        }
        RunReport { cycles: self.cycle - start, completed: false }
    }

    /// Names of all registered kernels, in step order.
    pub fn kernel_names(&self) -> Vec<String> {
        self.kernels.iter().map(|k| k.name().to_owned()).collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.cycle)
            .field("kernels", &self.kernel_count())
            .finish()
    }
}

/// Outcome of a bounded engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Cycles executed during this call.
    pub cycles: u64,
    /// `true` if the stop condition fired, `false` on cycle-budget timeout.
    pub completed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    struct CountTo {
        n: u64,
        hits: Rc<Cell<u64>>,
    }

    impl Kernel for CountTo {
        fn name(&self) -> &str {
            "count"
        }
        fn step(&mut self, _cy: Cycle) {
            if self.hits.get() < self.n {
                self.hits.set(self.hits.get() + 1);
            }
        }
        fn is_idle(&self) -> bool {
            self.hits.get() >= self.n
        }
    }

    #[test]
    fn run_until_stops_on_condition() {
        let hits = Rc::new(Cell::new(0));
        let mut e = Engine::new();
        e.add_kernel(CountTo { n: 5, hits: hits.clone() });
        let hits2 = hits.clone();
        let rep = e.run_until(100, move || hits2.get() == 5);
        assert!(rep.completed);
        assert_eq!(rep.cycles, 5);
        assert_eq!(e.cycle(), 5);
    }

    #[test]
    fn run_until_times_out() {
        let hits = Rc::new(Cell::new(0));
        let mut e = Engine::new();
        e.add_kernel(CountTo { n: u64::MAX, hits });
        let rep = e.run_until(10, || false);
        assert!(!rep.completed);
        assert_eq!(rep.cycles, 10);
    }

    #[test]
    fn quiescence_requires_settle_window() {
        let hits = Rc::new(Cell::new(0));
        let mut e = Engine::new();
        e.add_kernel(CountTo { n: 3, hits });
        let rep = e.run_until_quiescent(100);
        assert!(rep.completed);
        // Two fully busy cycles; the third cycle (where the kernel turns
        // idle) already counts toward the settle window.
        assert_eq!(rep.cycles, 2 + QUIESCENT_SETTLE_CYCLES);
    }

    #[test]
    fn step_order_is_registration_order() {
        struct Recorder {
            id: u8,
            log: Rc<std::cell::RefCell<Vec<u8>>>,
        }
        impl Kernel for Recorder {
            fn name(&self) -> &str {
                "rec"
            }
            fn step(&mut self, _cy: Cycle) {
                self.log.borrow_mut().push(self.id);
            }
        }
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut e = Engine::new();
        for id in 0..3 {
            e.add_kernel(Recorder { id, log: log.clone() });
        }
        e.step();
        e.step();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 0, 1, 2]);
    }
}
