//! The clocked simulation [`Engine`].

use crate::channel::{ArenaSlot, BroadcastCore, ChannelCore};
use crate::{
    BcastReceiverId, BcastSenderId, ChannelStats, CounterId, Cycle, Kernel, KernelId, Progress,
    ReceiverId, SenderId, SimContext, StateId, DEFAULT_LATENCY,
};
use std::marker::PhantomData;

/// Number of consecutive all-idle cycles required before
/// [`Engine::run_until_quiescent`] declares the pipeline drained. Channels
/// have visibility latency, so a single idle observation can be transient.
const QUIESCENT_SETTLE_CYCLES: u64 = 8;

/// Deterministic single-clock simulation engine.
///
/// Owns the channel arena (see [`SimContext`]) and a set of [`Kernel`]s, and
/// steps each *active* kernel once per cycle, in registration order. Kernels
/// that report [`Progress::Sleep`] are skipped until a subscribed channel
/// event wakes them — the idle-set scheduler. Because a sleeping kernel's
/// step is by contract a no-op, the schedule is observationally identical to
/// stepping every kernel every cycle (the original engine's behaviour), just
/// cheaper on mostly-quiescent pipelines.
///
/// The engine is `Send`: scenario sweeps can run one engine per thread.
///
/// # Example
///
/// See the [crate-level example](crate) for a complete two-kernel pipeline.
pub struct Engine {
    kernels: Vec<Box<dyn Kernel>>,
    ctx: SimContext,
    /// Indices of quiescence-gate kernels (sources), checked before the
    /// full idle scan.
    gates: Vec<u32>,
    cycle: Cycle,
    /// Total kernel step calls executed (diagnostic: `steps / (cycles *
    /// kernels)` is the fraction of the naive step-everyone schedule the
    /// idle-set scheduler actually ran).
    steps_executed: u64,
    /// Steady-state fast-forward: when enabled, the run loops consult the
    /// awake kernels' [`Kernel::hold_until`] horizons and jump the clock
    /// across provably no-op cycle ranges instead of simulating them.
    fast_forward: bool,
    /// Number of fast-forward jumps taken.
    ff_jumps: u64,
    /// Total cycles skipped by fast-forward jumps.
    ff_cycles_skipped: u64,
    /// Opt-in per-kernel step counters for the counts-tracing profiling
    /// pass. `None` (the default) keeps the step loop untouched — the
    /// disabled mode is bit-invisible by construction, not by flag checks
    /// on shared state. When enabled, entry `i` counts kernel `i`'s
    /// executed steps; one indexed increment per executed step is the
    /// entire overhead.
    step_counts: Option<Vec<u64>>,
}

impl Engine {
    /// Creates an empty engine at cycle zero.
    pub fn new() -> Self {
        Engine {
            kernels: Vec::new(),
            ctx: SimContext::new(),
            gates: Vec::new(),
            cycle: 0,
            steps_executed: 0,
            fast_forward: false,
            ff_jumps: 0,
            ff_cycles_skipped: 0,
            step_counts: None,
        }
    }

    /// Total kernel step calls executed so far (see the field docs).
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Enables per-kernel step counting (the counts-tracing hook). Kernels
    /// registered after this call are covered too. Idempotent: re-enabling
    /// keeps the existing counts.
    pub fn enable_step_counts(&mut self) {
        if self.step_counts.is_none() {
            self.step_counts = Some(vec![0; self.kernels.len()]);
        }
    }

    /// Per-kernel executed-step counts in registration order, `None` until
    /// [`enable_step_counts`](Self::enable_step_counts) is called.
    pub fn step_counts(&self) -> Option<&[u64]> {
        self.step_counts.as_deref()
    }

    /// Enables or disables steady-state fast-forward (default: off).
    ///
    /// With fast-forward on, the run loops ([`run_cycles`](Self::run_cycles),
    /// [`run_until`](Self::run_until),
    /// [`run_until_quiescent`](Self::run_until_quiescent)) call
    /// [`fast_forward_now`](Self::fast_forward_now) before each cycle and
    /// jump the clock across cycle ranges every awake kernel proves to be a
    /// no-op — observationally identical to stepping through them (cycles,
    /// counters, per-channel statistics all bit-equal), just without the
    /// per-cycle work.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// `true` when steady-state fast-forward is enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// Number of fast-forward jumps taken so far.
    pub fn ff_jumps(&self) -> u64 {
        self.ff_jumps
    }

    /// Total cycles skipped by fast-forward jumps so far.
    pub fn ff_cycles_skipped(&self) -> u64 {
        self.ff_cycles_skipped
    }

    /// Creates a channel with the given debug `name` and `capacity`, using
    /// the default visibility latency of one cycle, and returns its typed
    /// endpoint handles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity FIFO cannot transfer
    /// data under stall-on-full semantics.
    pub fn channel<T: Send + 'static>(
        &mut self,
        name: &str,
        capacity: usize,
    ) -> (SenderId<T>, ReceiverId<T>) {
        self.channel_with_latency(name, capacity, DEFAULT_LATENCY)
    }

    /// Creates a channel with an explicit visibility `latency` in cycles.
    ///
    /// A latency of zero permits same-cycle forwarding (useful for purely
    /// combinational adapters); hardware FIFOs use at least one.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn channel_with_latency<T: Send + 'static>(
        &mut self,
        name: &str,
        capacity: usize,
        latency: u64,
    ) -> (SenderId<T>, ReceiverId<T>) {
        let idx = self.ctx.add_channel(
            ArenaSlot::plain(ChannelCore::<T>::new(name, capacity, latency)),
            0,
        );
        (
            SenderId {
                idx,
                _marker: PhantomData,
            },
            ReceiverId {
                idx,
                _marker: PhantomData,
            },
        )
    }

    /// Creates a broadcast channel fanning each pushed value out to
    /// `readers` taps (each a FIFO view named `{prefix}{reader}` with its
    /// own `capacity` and statistics), with the default latency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `readers` is zero.
    pub fn broadcast_channel<T: Send + 'static>(
        &mut self,
        name_prefix: &str,
        readers: usize,
        capacity: usize,
    ) -> (BcastSenderId<T>, Vec<BcastReceiverId<T>>) {
        self.broadcast_channel_with_latency(name_prefix, readers, capacity, DEFAULT_LATENCY)
    }

    /// [`broadcast_channel`](Self::broadcast_channel) with an explicit
    /// visibility latency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `readers` is zero.
    pub fn broadcast_channel_with_latency<T: Send + 'static>(
        &mut self,
        name_prefix: &str,
        readers: usize,
        capacity: usize,
        latency: u64,
    ) -> (BcastSenderId<T>, Vec<BcastReceiverId<T>>) {
        self.register_broadcast(BroadcastCore::<T>::new(
            name_prefix,
            readers,
            capacity,
            latency,
        ))
    }

    /// [`broadcast_channel`](Self::broadcast_channel) with a relevance
    /// function enabling the **cold-tap auto-advance**: `relevance(item)`
    /// returns the bitmask of reader taps the item matters to (one call
    /// classifies the item for every tap — the wide-word case keeps this
    /// mask up to date while gathering records). Taps outside the mask see
    /// a no-op item: it never wakes a tap whose consumer parked via
    /// [`SimContext::bcast_park`] — the engine advances the tap's cursor
    /// with full pop/occupancy bookkeeping at the end of the cycle the
    /// item becomes visible, which is precisely when the consumer would
    /// have consumed the no-op item had it been woken.
    ///
    /// The schedule equivalence assumes the producer pushes at most one
    /// item per cycle and steps before the tap consumers within a cycle
    /// (both true for pipelines built in registration order).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `readers` is zero, or if `readers` exceeds
    /// 64 (the relevance masks are single words).
    pub fn broadcast_channel_with_relevance<T: Send + 'static>(
        &mut self,
        name_prefix: &str,
        readers: usize,
        capacity: usize,
        relevance: crate::TapRelevance<T>,
    ) -> (BcastSenderId<T>, Vec<BcastReceiverId<T>>) {
        self.register_broadcast(
            BroadcastCore::<T>::new(name_prefix, readers, capacity, DEFAULT_LATENCY)
                .with_relevance(relevance),
        )
    }

    fn register_broadcast<T: Send + 'static>(
        &mut self,
        core: BroadcastCore<T>,
    ) -> (BcastSenderId<T>, Vec<BcastReceiverId<T>>) {
        let readers = core.cursors.len();
        let idx = self.ctx.add_channel(ArenaSlot::broadcast(core), readers);
        let tx = BcastSenderId {
            idx,
            _marker: PhantomData,
        };
        let rxs = (0..readers as u32)
            .map(|reader| BcastReceiverId {
                idx,
                reader,
                _marker: PhantomData,
            })
            .collect();
        (tx, rxs)
    }

    /// Allocates a typed state register in the engine's state arena,
    /// initialised to `init`, and returns its `Copy` handle.
    ///
    /// This is the build-time replacement for `Arc<Mutex<…>>` kernel state:
    /// every kernel that needs the state (a PE writing its private buffer,
    /// the merger folding it) holds the same handle and resolves it through
    /// the [`SimContext`] passed to `step` —
    /// [`state`](SimContext::state)/[`state_mut`](SimContext::state_mut)
    /// while running, [`take_state`](SimContext::take_state) at end of run.
    pub fn state<T: Send + 'static>(&mut self, init: T) -> StateId<T> {
        self.ctx.arena.add_state(init)
    }

    /// Allocates a plain `u64` counter (initially zero) in the engine's
    /// state arena and returns its `Copy` handle.
    ///
    /// The build-time replacement for shared atomic counters: kernels bump
    /// it via [`SimContext::counter_add`]/[`counter_incr`](SimContext::counter_incr),
    /// observers read it via [`SimContext::counter`].
    pub fn counter(&mut self) -> CounterId {
        self.ctx.arena.add_counter()
    }

    /// Registers a kernel; kernels are stepped in registration order. The
    /// kernel's [`wake_set`](Kernel::wake_set) is recorded for the idle-set
    /// scheduler, and the kernel starts awake. Returns the kernel's id,
    /// usable with [`SimContext::wake_kernel`].
    pub fn add_kernel<K: Kernel + 'static>(&mut self, kernel: K) -> KernelId {
        self.add_boxed(Box::new(kernel))
    }

    /// Registers an already-boxed kernel, returning its id.
    pub fn add_boxed(&mut self, kernel: Box<dyn Kernel>) -> KernelId {
        let idx = self.kernels.len() as u32;
        let ws = kernel.wake_set();
        for ch in ws.on_push {
            self.ctx.subscribe_push(ch, idx);
        }
        for (ch, reader) in ws.on_push_bcast {
            self.ctx.subscribe_push_tap(ch, reader, idx);
        }
        for ch in ws.on_pop {
            self.ctx.subscribe_pop(ch, idx);
        }
        self.ctx.wake.push(true);
        self.ctx.awake_count += 1;
        if kernel.is_quiescence_gate() {
            self.gates.push(idx);
        }
        if let Some(counts) = &mut self.step_counts {
            counts.push(0);
        }
        self.kernels.push(kernel);
        idx
    }

    /// The current cycle (the next one to be executed).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Number of registered kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Number of kernels currently awake (not parked by the idle-set
    /// scheduler) — the maintained active-set size, O(1) instead of a
    /// recount of the wake flags.
    pub fn active_kernels(&self) -> usize {
        #[cfg(debug_assertions)]
        {
            let flagged = self.ctx.wake.iter().filter(|&&w| w).count();
            debug_assert_eq!(
                flagged, self.ctx.awake_count as usize,
                "maintained active-set size out of sync with the wake flags"
            );
        }
        self.ctx.awake_count as usize
    }

    /// `true` when kernel `k` is currently awake (in the active set).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a registered kernel id.
    pub fn kernel_awake(&self, k: KernelId) -> bool {
        assert!((k as usize) < self.kernels.len(), "unknown kernel {k}");
        self.ctx.wake[k as usize]
    }

    /// Read access to the channel arena (statistics, post-run inspection).
    pub fn context(&self) -> &SimContext {
        &self.ctx
    }

    /// Mutable access to the channel arena — used by tests and harness code
    /// that drives channels directly, outside any kernel.
    pub fn context_mut(&mut self) -> &mut SimContext {
        &mut self.ctx
    }

    /// Snapshots every channel's statistics (see
    /// [`SimContext::channel_stats`]).
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.ctx.channel_stats()
    }

    /// Publishes the engine's counters into an observability registry —
    /// the engine layer's contribution to a cross-layer metrics snapshot.
    ///
    /// Publish-on-demand by design: nothing here touches the step path
    /// (the counters already exist; this re-exports them as absolute
    /// values at snapshot time), so enabling observability cannot perturb
    /// cycle-equivalence goldens.
    pub fn publish_metrics(&self, reg: &mut ditto_obs::MetricsRegistry) {
        let cycles = reg.counter("ditto_engine_cycles", "engine", "cycles");
        let steps = reg.counter("ditto_engine_kernel_steps", "engine", "items");
        let jumps = reg.counter("ditto_engine_ff_jumps", "engine", "items");
        let skipped = reg.counter("ditto_engine_ff_cycles_skipped", "engine", "cycles");
        let kernels = reg.gauge("ditto_engine_kernels", "engine", "kernels");
        let active = reg.gauge("ditto_engine_active_kernels", "engine", "kernels");
        reg.set_counter(cycles, self.cycle);
        reg.set_counter(steps, self.steps_executed);
        reg.set_counter(jumps, self.ff_jumps);
        reg.set_counter(skipped, self.ff_cycles_skipped);
        reg.set_gauge(kernels, self.kernels.len() as u64);
        reg.set_gauge(active, self.ctx.awake_count as u64);
        // The allocation-free aggregate, not the per-channel snapshot: a
        // per-poll publish cannot afford one name clone per channel.
        let agg = self.ctx.channel_aggregate();
        let h_pushes = reg.counter("ditto_engine_channel_pushes", "engine", "items");
        let h_pops = reg.counter("ditto_engine_channel_pops", "engine", "items");
        let h_stalls = reg.counter("ditto_engine_channel_full_stalls", "engine", "items");
        let h_occ = reg.gauge("ditto_engine_channel_max_occupancy", "engine", "items");
        reg.set_counter(h_pushes, agg.pushes);
        reg.set_counter(h_pops, agg.pops);
        reg.set_counter(h_stalls, agg.full_stalls);
        reg.set_gauge(h_occ, agg.max_occupancy as u64);
    }

    /// Executes exactly one clock cycle: every awake kernel steps once, in
    /// registration order.
    ///
    /// The loop is bounded by the maintained active set instead of
    /// unconditionally scanning the whole wake-flag vector: `scan_ahead`
    /// starts at the active-set size, each visited awake kernel consumes
    /// one unit, an in-cycle wake of a later-indexed kernel adds one (it
    /// steps this cycle; a wake behind the scan steps next cycle), and the
    /// loop exits the moment no awake kernel remains ahead — on a
    /// mostly-parked pipeline the tail of the kernel vector is never
    /// touched. A materialized index list (sorted insert / in-place
    /// remove, or a bitset) was measured strictly slower at tens of
    /// kernels: per-event list/bitset maintenance costs more than the
    /// predictable flag reads it saves, and an order-ignoring swap-remove
    /// list would break the registration-order stepping contract the
    /// cycle-equivalence goldens pin. After the last kernel, cold
    /// broadcast taps are auto-advanced past the cycle's no-op items.
    pub fn step(&mut self) {
        let cy = self.cycle;
        let Engine {
            kernels,
            ctx,
            steps_executed,
            step_counts,
            ..
        } = self;
        ctx.scan_ahead = ctx.awake_count;
        let mut i = 0usize;
        while ctx.scan_ahead > 0 {
            if !ctx.wake[i] {
                i += 1;
                continue;
            }
            ctx.scan_ahead -= 1;
            *steps_executed += 1;
            if let Some(counts) = step_counts {
                counts[i] += 1;
            }
            ctx.current_kernel = i as u32;
            ctx.self_woken = false;
            if kernels[i].step(cy, ctx) == Progress::Sleep && !ctx.self_woken {
                // Park unless the kernel's own step triggered one of its
                // wake events (self-loop); the next subscribed event or
                // explicit wake re-activates it.
                ctx.wake[i] = false;
                ctx.awake_count -= 1;
            }
            i += 1;
        }
        self.ctx.current_kernel = u32::MAX;
        self.ctx.advance_cold_taps(cy);
        self.cycle += 1;
    }

    /// Attempts one steady-state fast-forward jump of at most `budget`
    /// cycles, returning the number of cycles skipped (zero when no jump
    /// was possible).
    ///
    /// The event horizon is the earliest of: every awake kernel's
    /// [`Kernel::hold_until`] claim (any awake kernel declining with `None`
    /// aborts the jump), the next cold-tap catch-up event of an
    /// auto-advancing broadcast channel (those end-of-cycle pops are
    /// observable — statistics, backpressure release, wakes), and
    /// `current cycle + budget`. Skipped cycles are provably no-ops: no
    /// kernel steps, no channel moves, no wake fires, so only the clock —
    /// and the jump telemetry — advances. Sleeping kernels need no proof:
    /// they are not stepped until a wake event, and no wake can fire inside
    /// the gap.
    pub fn fast_forward_now(&mut self, budget: u64) -> u64 {
        if budget == 0 {
            return 0;
        }
        let cy = self.cycle;
        let mut horizon = cy.saturating_add(budget);
        let mut remaining = self.ctx.awake_count;
        for (i, kernel) in self.kernels.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if self.ctx.wake[i] {
                remaining -= 1;
                match kernel.hold_until(cy, &self.ctx) {
                    Some(h) if h > cy => horizon = horizon.min(h),
                    _ => return 0,
                }
            }
        }
        if let Some(ev) = self.ctx.next_cold_tap_event() {
            if ev <= cy {
                // This very cycle's end-of-cycle catch-up may pop:
                // simulate it.
                return 0;
            }
            horizon = horizon.min(ev);
        }
        let skipped = horizon - cy;
        if skipped > 0 {
            self.cycle = horizon;
            self.ff_jumps += 1;
            self.ff_cycles_skipped += skipped;
        }
        skipped
    }

    /// Executes `n` clock cycles unconditionally.
    ///
    /// With [fast-forward](Self::set_fast_forward) enabled, provably no-op
    /// cycle ranges inside the budget are jumped instead of stepped.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.cycle + n;
        while self.cycle < end {
            if self.fast_forward {
                self.fast_forward_now(end - self.cycle);
                if self.cycle >= end {
                    break;
                }
            }
            self.step();
        }
    }

    /// Runs until `done(ctx)` returns `true`, checking after every cycle, or
    /// until `max_cycles` have elapsed in this call. The predicate receives
    /// the [`SimContext`] so it can observe arena counters and state
    /// registers directly.
    ///
    /// Returns a [`RunReport`] whose `completed` flag distinguishes the two
    /// outcomes.
    pub fn run_until<F: FnMut(&SimContext) -> bool>(
        &mut self,
        max_cycles: u64,
        mut done: F,
    ) -> RunReport {
        let start = self.cycle;
        while self.cycle - start < max_cycles {
            if self.fast_forward {
                // The context is frozen across a jump (the skipped steps
                // are no-ops), so the predicate — false after the previous
                // step — stays false throughout the gap: one post-jump
                // check covers every skipped cycle.
                self.fast_forward_now(max_cycles - (self.cycle - start));
                if self.cycle - start >= max_cycles {
                    break;
                }
            }
            self.step();
            if done(&self.ctx) {
                return RunReport {
                    cycles: self.cycle - start,
                    completed: true,
                };
            }
        }
        RunReport {
            cycles: self.cycle - start,
            completed: false,
        }
    }

    /// `true` when every quiescence gate (typically the sources) reports
    /// idle. While any gate still has data the pipeline cannot be
    /// quiescent, so this cheap check short-circuits the full scan.
    fn gates_idle(&self) -> bool {
        self.gates
            .iter()
            .all(|&g| self.kernels[g as usize].is_idle(&self.ctx))
    }

    /// `true` when every *awake* kernel reports idle — bounded by the
    /// active-set size, so the per-cycle quiescence check ends at the last
    /// awake kernel instead of walking the full population. Sleeping
    /// kernels are skipped: their idle status is frozen while they sleep,
    /// and the settling confirmation re-checks them before completion is
    /// declared.
    fn active_all_idle(&self) -> bool {
        let mut remaining = self.ctx.awake_count;
        for (k, kernel) in self.kernels.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if self.ctx.wake[k] {
                remaining -= 1;
                if !kernel.is_idle(&self.ctx) {
                    return false;
                }
            }
        }
        true
    }

    /// Full-population idle check used to confirm a completed settling
    /// window. Wakes any sleeping non-idle kernel it finds (so a stalled
    /// producer parked on backpressure gets to retry rather than deadlock
    /// the check).
    fn confirm_all_idle(&mut self) -> bool {
        let mut all = true;
        for i in 0..self.kernels.len() {
            if !self.kernels[i].is_idle(&self.ctx) {
                self.ctx.wake_kernel(i as u32);
                all = false;
            }
        }
        all
    }

    /// Runs until every kernel reports [`Kernel::is_idle`] for a settling
    /// window of consecutive cycles, or until `max_cycles` elapse.
    ///
    /// This is the standard way to drain a pipeline at end of input: sources
    /// become idle once exhausted, intermediate kernels once their queues are
    /// empty, and the settling window covers channel visibility latency.
    ///
    /// The per-cycle check only consults awake kernels (the active set); the
    /// full population is re-confirmed once when the settling window
    /// completes.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> RunReport {
        let start = self.cycle;
        let mut idle_streak = 0u64;
        while self.cycle - start < max_cycles {
            if self.fast_forward {
                let remaining = max_cycles - (self.cycle - start);
                // The engine state is frozen across a jump, so each
                // skipped cycle's idle observation equals the current one;
                // credit them to the streak. When idle, the jump is capped
                // one cycle short of completing the settle window — the
                // completing cycle runs the full-population confirmation,
                // which may wake kernels, so it is always simulated.
                let idle_now = self.gates_idle() && self.active_all_idle();
                let budget = if idle_now {
                    remaining.min(QUIESCENT_SETTLE_CYCLES - idle_streak - 1)
                } else {
                    remaining
                };
                let skipped = self.fast_forward_now(budget);
                if idle_now {
                    idle_streak += skipped;
                }
                if self.cycle - start >= max_cycles {
                    break;
                }
            }
            self.step();
            // Gate filter: while any source still has data, the pipeline
            // cannot be quiescent — skip the full scan.
            if self.gates_idle() && self.active_all_idle() {
                idle_streak += 1;
                if idle_streak >= QUIESCENT_SETTLE_CYCLES {
                    if self.confirm_all_idle() {
                        return RunReport {
                            cycles: self.cycle - start,
                            completed: true,
                        };
                    }
                    idle_streak = 0;
                }
            } else {
                idle_streak = 0;
            }
        }
        RunReport {
            cycles: self.cycle - start,
            completed: false,
        }
    }

    /// Names of all registered kernels, in step order.
    pub fn kernel_names(&self) -> Vec<String> {
        self.kernels.iter().map(|k| k.name().to_owned()).collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.cycle)
            .field("kernels", &self.kernel_count())
            .finish()
    }
}

/// Outcome of a bounded engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Cycles executed during this call.
    pub cycles: u64,
    /// `true` if the stop condition fired, `false` on cycle-budget timeout.
    pub completed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountTo {
        n: u64,
        hits: CounterId,
    }

    impl Kernel for CountTo {
        fn name(&self) -> &str {
            "count"
        }
        fn step(&mut self, _cy: Cycle, ctx: &mut SimContext) -> Progress {
            if ctx.counter(self.hits) < self.n {
                ctx.counter_incr(self.hits);
            }
            Progress::Busy
        }
        fn is_idle(&self, ctx: &SimContext) -> bool {
            ctx.counter(self.hits) >= self.n
        }
    }

    #[test]
    fn run_until_stops_on_condition() {
        let mut e = Engine::new();
        let hits = e.counter();
        e.add_kernel(CountTo { n: 5, hits });
        let rep = e.run_until(100, |ctx| ctx.counter(hits) == 5);
        assert!(rep.completed);
        assert_eq!(rep.cycles, 5);
        assert_eq!(e.cycle(), 5);
    }

    #[test]
    fn run_until_times_out() {
        let mut e = Engine::new();
        let hits = e.counter();
        e.add_kernel(CountTo { n: u64::MAX, hits });
        let rep = e.run_until(10, |_| false);
        assert!(!rep.completed);
        assert_eq!(rep.cycles, 10);
    }

    #[test]
    fn quiescence_requires_settle_window() {
        let mut e = Engine::new();
        let hits = e.counter();
        e.add_kernel(CountTo { n: 3, hits });
        let rep = e.run_until_quiescent(100);
        assert!(rep.completed);
        // Two fully busy cycles; the third cycle (where the kernel turns
        // idle) already counts toward the settle window.
        assert_eq!(rep.cycles, 2 + QUIESCENT_SETTLE_CYCLES);
    }

    #[test]
    fn step_order_is_registration_order() {
        struct Recorder {
            id: u64,
            log: CounterId,
        }
        impl Kernel for Recorder {
            fn name(&self) -> &str {
                "rec"
            }
            fn step(&mut self, _cy: Cycle, ctx: &mut SimContext) -> Progress {
                // Encode order: each step appends its id as a base-4 digit.
                ctx.set_counter(self.log, ctx.counter(self.log) * 4 + self.id);
                Progress::Busy
            }
        }
        let mut e = Engine::new();
        let log = e.counter();
        for id in 1..=3 {
            e.add_kernel(Recorder { id, log });
        }
        e.step();
        e.step();
        // Two cycles of 1,2,3 in base 4: 0o123123 base-4 digits.
        let mut expect = 0u64;
        for _ in 0..2 {
            for id in 1..=3 {
                expect = expect * 4 + id;
            }
        }
        assert_eq!(e.context().counter(log), expect);
    }

    #[test]
    fn sleeping_kernel_is_skipped_until_woken() {
        struct Sleeper {
            rx: ReceiverId<u32>,
            steps: CounterId,
            got: CounterId,
        }
        impl Kernel for Sleeper {
            fn name(&self) -> &str {
                "sleeper"
            }
            fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
                ctx.counter_incr(self.steps);
                if let Some(v) = ctx.try_recv(cy, self.rx) {
                    ctx.counter_add(self.got, u64::from(v));
                    Progress::Busy
                } else if ctx.is_empty(self.rx) {
                    Progress::Sleep
                } else {
                    Progress::Busy
                }
            }
            fn wake_set(&self) -> crate::WakeSet {
                crate::WakeSet::new().after_push_on(self.rx)
            }
        }
        let mut e = Engine::new();
        let (tx, rx) = e.channel::<u32>("in", 4);
        let steps = e.counter();
        let got = e.counter();
        e.add_kernel(Sleeper { rx, steps, got });
        e.run_cycles(50);
        let step_count = |e: &Engine| e.context().counter(steps);
        assert_eq!(step_count(&e), 1, "parked after the first no-op step");
        // Push from outside any kernel: wakes the sleeper.
        e.context_mut().try_send(50, tx, 7).unwrap();
        e.run_cycles(4);
        assert_eq!(e.context().counter(got), 7);
        // Busy on the recv cycle, one more no-op step, asleep again.
        assert!(step_count(&e) <= 4, "steps {}", step_count(&e));
        let parked_steps = step_count(&e);
        e.run_cycles(50);
        assert_eq!(step_count(&e), parked_steps, "asleep again after drain");
    }

    #[test]
    fn wake_on_pop_releases_backpressured_producer() {
        struct Producer {
            tx: SenderId<u32>,
            sent: CounterId,
            steps: CounterId,
        }
        impl Kernel for Producer {
            fn name(&self) -> &str {
                "producer"
            }
            fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
                ctx.counter_incr(self.steps);
                if ctx.can_send(self.tx) {
                    ctx.try_send(cy, self.tx, 1).expect("checked");
                    ctx.counter_incr(self.sent);
                    Progress::Busy
                } else {
                    Progress::Sleep
                }
            }
            fn wake_set(&self) -> crate::WakeSet {
                crate::WakeSet::new().after_pop_on(self.tx)
            }
        }
        let mut e = Engine::new();
        let (tx, rx) = e.channel::<u32>("out", 2);
        let sent = e.counter();
        let steps = e.counter();
        e.add_kernel(Producer { tx, sent, steps });
        e.run_cycles(20);
        assert_eq!(e.context().counter(sent), 2, "filled the FIFO then parked");
        assert_eq!(
            e.context().counter(steps),
            3,
            "two sends + one parking no-op"
        );
        // Drain one item: the producer wakes and refills.
        assert_eq!(e.context_mut().try_recv(20, rx), Some(1));
        e.run_cycles(5);
        assert_eq!(e.context().counter(sent), 3);
    }

    #[test]
    fn step_counts_track_per_kernel_executions() {
        let mut e = Engine::new();
        assert!(e.step_counts().is_none(), "disabled by default");
        let hits = e.counter();
        e.add_kernel(CountTo { n: u64::MAX, hits });
        e.enable_step_counts();
        // Kernels registered after enabling are covered too.
        let hits2 = e.counter();
        e.add_kernel(CountTo {
            n: u64::MAX,
            hits: hits2,
        });
        e.run_cycles(7);
        assert_eq!(e.step_counts().unwrap(), &[7, 7]);
        assert_eq!(e.steps_executed(), 14, "aggregate counter unaffected");
        // Idempotent re-enable keeps counts.
        e.enable_step_counts();
        assert_eq!(e.step_counts().unwrap(), &[7, 7]);
    }

    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let mut e = Engine::new();
        let (_tx, _rx) = e.channel::<u64>("x", 4);
        let hits = e.counter();
        e.add_kernel(CountTo { n: 1, hits });
        assert_send(&e);
        // And it can actually cross a thread boundary mid-simulation.
        let e = std::thread::spawn(move || {
            let mut e = e;
            e.run_cycles(10);
            e
        })
        .join()
        .expect("no panic");
        assert_eq!(e.cycle(), 10);
    }

    #[test]
    fn state_registers_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Buf(Vec<u64>);
        let mut e = Engine::new();
        let a = e.state(Buf(vec![0; 4]));
        let b = e.state(7u64);
        let ctx = e.context_mut();
        ctx.state_mut(a).0[2] = 9;
        *ctx.state_mut(b) += 1;
        assert_eq!(ctx.state(a), &Buf(vec![0, 0, 9, 0]));
        assert_eq!(*ctx.state(b), 8);
        assert_eq!(ctx.take_state(a), Buf(vec![0, 0, 9, 0]));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn state_double_take_panics() {
        let mut e = Engine::new();
        let id = e.state(1u64);
        let ctx = e.context_mut();
        assert_eq!(ctx.take_state(id), 1);
        let _ = ctx.take_state(id);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn state_access_after_take_panics() {
        let mut e = Engine::new();
        let id = e.state(1u64);
        e.context_mut().take_state(id);
        let _ = e.context().state(id);
    }

    #[test]
    #[should_panic(expected = "mismatched type")]
    fn state_type_mismatch_panics() {
        let mut e = Engine::new();
        let id = e.state(1u64);
        // Forge a differently-typed handle onto the same slot.
        let wrong = StateId::<String> {
            idx: id.idx,
            _marker: PhantomData,
        };
        let _ = e.context().state(wrong);
    }
}
