//! The engine-owned **state arena**: typed per-kernel state registers and
//! plain counters, addressed by `Copy` handles.
//!
//! The channel arena (PR 1) removed reference counting and interior
//! mutability from the *communication* hot path; this module does the same
//! for kernel *state*. Instead of sharing PE buffers through
//! `Arc<Mutex<…>>` and counting tuples through shared atomics, a kernel
//! allocates its state in the engine at build time ([`Engine::state`],
//! [`Engine::counter`](crate::Engine::counter)) and holds only a `Copy`
//! [`StateId<T>`]/[`CounterId`] handle, resolved through the
//! [`SimContext`](crate::SimContext) already passed to every
//! [`Kernel::step`](crate::Kernel::step):
//!
//! * [`SimContext::state`](crate::SimContext::state) /
//!   [`SimContext::state_mut`](crate::SimContext::state_mut) — borrow a
//!   typed state register;
//! * [`SimContext::counter`](crate::SimContext::counter) /
//!   [`SimContext::counter_add`](crate::SimContext::counter_add) — read /
//!   bump a plain `u64` counter;
//! * [`SimContext::take_state`](crate::SimContext::take_state) — move a
//!   state out at end of run (the merger/finalize path), no `Arc`
//!   unwrapping required.
//!
//! Because several kernels may hold the *same* handle (a PE writes its
//! buffer, the merger folds it), the arena is exactly the dataflow-HLS
//! discipline: all inter-stage state is explicit and engine-owned, and the
//! whole engine stays `Send` for free.
//!
//! [`Engine::state`]: crate::Engine::state

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

/// Handle to a typed state register in the engine's state arena.
///
/// Plain `Copy` data; allocated by [`Engine::state`](crate::Engine::state)
/// and resolved through the [`SimContext`](crate::SimContext). Several
/// kernels may hold the same handle; the borrow checker serialises their
/// accesses through the `&mut SimContext` each `step` receives.
pub struct StateId<T> {
    pub(crate) idx: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for StateId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for StateId<T> {}
impl<T> fmt::Debug for StateId<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateId({})", self.idx)
    }
}
impl<T> PartialEq for StateId<T> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx
    }
}
impl<T> Eq for StateId<T> {}

/// Handle to a plain `u64` counter in the engine's counter arena.
///
/// Allocated by [`Engine::counter`](crate::Engine::counter); incremented by
/// kernels through [`SimContext::counter_add`](crate::SimContext::counter_add)
/// and read by observers (the runtime profiler's throughput monitor, run
/// reports) through [`SimContext::counter`](crate::SimContext::counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId {
    pub(crate) idx: u32,
}

/// Sentinel left in a slot whose state was moved out with `take_state`;
/// distinct from every user type (it is private), so stale-handle use after
/// extraction always panics with an attributable message.
struct Taken;

/// The state arena backing one engine: typed registers plus counters.
#[derive(Default)]
pub(crate) struct StateArena {
    /// Typed state registers, downcast on access like channel cores.
    states: Vec<Box<dyn Any + Send>>,
    /// Plain counters — a bump is an indexed add, not an atomic RMW.
    counters: Vec<u64>,
}

impl StateArena {
    pub(crate) fn add_state<T: Send + 'static>(&mut self, init: T) -> StateId<T> {
        let idx = self.states.len() as u32;
        self.states.push(Box::new(init));
        StateId {
            idx,
            _marker: PhantomData,
        }
    }

    pub(crate) fn add_counter(&mut self) -> CounterId {
        let idx = self.counters.len() as u32;
        self.counters.push(0);
        CounterId { idx }
    }

    #[inline]
    pub(crate) fn state<T: Send + 'static>(&self, id: StateId<T>) -> &T {
        let slot = self.states[id.idx as usize].as_ref();
        match slot.downcast_ref::<T>() {
            Some(state) => state,
            None => Self::bad_slot(slot.is::<Taken>(), id.idx),
        }
    }

    #[inline]
    pub(crate) fn state_mut<T: Send + 'static>(&mut self, id: StateId<T>) -> &mut T {
        let slot = self.states[id.idx as usize].as_mut();
        if !slot.is::<T>() {
            Self::bad_slot(slot.is::<Taken>(), id.idx);
        }
        slot.downcast_mut::<T>()
            .unwrap_or_else(|| unreachable!("checked"))
    }

    /// Cold path shared by the typed accessors: attribute the failure.
    #[cold]
    fn bad_slot(taken: bool, idx: u32) -> ! {
        if taken {
            panic!("state {idx} already taken out of the arena");
        }
        panic!("state id {idx} used with mismatched type");
    }

    pub(crate) fn take_state<T: Send + 'static>(&mut self, id: StateId<T>) -> T {
        let slot = std::mem::replace(&mut self.states[id.idx as usize], Box::new(Taken));
        assert!(
            !slot.is::<Taken>(),
            "state {} already taken out of the arena",
            id.idx
        );
        *slot
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("state {} taken with mismatched type", id.idx))
    }

    #[inline]
    pub(crate) fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.idx as usize]
    }

    #[inline]
    pub(crate) fn counter_add(&mut self, id: CounterId, n: u64) {
        self.counters[id.idx as usize] += n;
    }

    #[inline]
    pub(crate) fn set_counter(&mut self, id: CounterId, value: u64) {
        self.counters[id.idx as usize] = value;
    }

    pub(crate) fn len(&self) -> (usize, usize) {
        (self.states.len(), self.counters.len())
    }
}
