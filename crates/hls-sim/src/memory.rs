//! Global-memory and streaming-input models.
//!
//! The paper's memory access engine coalesces requests and reads the DDR4
//! interface in bursts, delivering `Wmem / Wtuple` tuples per cycle at steady
//! state (§IV-C4). For the online-processing experiment (Fig. 9) the same
//! interface stands in for a 100 Gbps network source. Both reduce to the same
//! abstraction: a [`StreamSource`] that yields at most a rate-limited number
//! of items per cycle after an initial burst latency.

use crate::Cycle;

/// A cycle-aware producer of input items.
///
/// `pull` is called by the memory-reader kernel once per cycle with the
/// number of items the pipeline can accept; the source appends at most that
/// many to `out`. Implementations must be deterministic. Sources are `Send`
/// so that whole engines can move across sweep threads.
pub trait StreamSource<T>: Send {
    /// Appends up to `max` items available at cycle `cy` to `out`; returns
    /// the number appended.
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<T>) -> usize;

    /// `true` once the source will never produce another item.
    fn exhausted(&self) -> bool;

    /// Total items produced so far.
    fn produced(&self) -> u64;

    /// Earliest cycle at or after `cy` at which [`pull`](Self::pull) might
    /// return a nonzero count — and before which every `pull` is guaranteed
    /// to return zero *and* leave the source's observable behaviour
    /// unchanged (so skipping those calls entirely is equivalent).
    ///
    /// The default, `cy` itself, claims nothing ("might produce right now")
    /// and keeps the fast-forward detector from jumping while the reader
    /// waits on this source. Rate-limited sources should override it with
    /// their next token-grant or burst-arrival cycle.
    fn next_pull_at(&self, cy: Cycle) -> Cycle {
        cy
    }
}

/// Bandwidth model of the global-memory interface.
///
/// Converts interface width and tuple width into a per-cycle tuple budget
/// (Equation 1's `Wmem / Wtuple`) and captures the initial burst latency.
///
/// # Example
///
/// ```
/// use hls_sim::MemoryModel;
///
/// // The paper's platform: 64-byte (512-bit) interface, 8-byte tuples.
/// let mem = MemoryModel::new(64, 200);
/// assert_eq!(mem.tuples_per_cycle(8), 8.0);
/// assert_eq!(mem.tuples_per_cycle(16), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Interface width in bytes transferred per cycle (`Wmem`).
    pub bytes_per_cycle: u32,
    /// Cycles from issuing the first burst until data starts flowing.
    pub burst_latency: u64,
}

impl MemoryModel {
    /// Creates a model with the given interface width and burst latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u32, burst_latency: u64) -> Self {
        assert!(
            bytes_per_cycle > 0,
            "memory interface width must be nonzero"
        );
        MemoryModel {
            bytes_per_cycle,
            burst_latency,
        }
    }

    /// Steady-state tuples deliverable per cycle for `tuple_bytes`-wide
    /// tuples (`Wmem / Wtuple`).
    ///
    /// # Panics
    ///
    /// Panics if `tuple_bytes` is zero.
    pub fn tuples_per_cycle(&self, tuple_bytes: u32) -> f64 {
        assert!(tuple_bytes > 0, "tuple width must be nonzero");
        f64::from(self.bytes_per_cycle) / f64::from(tuple_bytes)
    }
}

impl Default for MemoryModel {
    /// The paper's platform: 64-byte interface, 200-cycle burst latency.
    fn default() -> Self {
        MemoryModel::new(64, 200)
    }
}

/// Fractional-rate token bucket used to rate-limit sources.
///
/// Accumulates `rate` tokens per elapsed cycle (rates below one item/cycle
/// are supported) up to one cycle's worth of headroom beyond the burst size,
/// and grants whole items on request.
///
/// The token balance is *anchored*: it is recomputed from the last cycle
/// tokens were actually consumed, in a single multiply, rather than
/// accumulated call by call. Calling [`grant`](Self::grant) every cycle and
/// calling it once after a gap therefore yield bit-identical outcomes —
/// the property the engine's fast-forward mode relies on to skip the
/// zero-grant cycles without simulating them.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    rate: f64,
    /// Token balance at the anchor cycle `last_cycle`.
    tokens: f64,
    /// Anchor: last cycle at which tokens were consumed (or zero).
    last_cycle: Cycle,
    burst: f64,
}

impl RateLimiter {
    /// Creates a limiter releasing `rate` items per cycle on average, with a
    /// maximum accumulation (`burst`) of `burst_items`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64, burst_items: usize) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        // Cycle zero gets a full cycle's budget like every other cycle.
        RateLimiter {
            rate,
            tokens: rate,
            last_cycle: 0,
            burst: burst_items as f64,
        }
    }

    /// Token balance available at cycle `cy` (≥ the anchor), clamped to the
    /// burst cap. A pure function of the anchor — the same expression
    /// whether evaluated every cycle or once after a gap.
    #[inline]
    fn tokens_at(&self, cy: Cycle) -> f64 {
        let elapsed = (cy.max(self.last_cycle) - self.last_cycle) as f64;
        (self.tokens + elapsed * self.rate).min(self.burst.max(self.rate))
    }

    /// Grants up to `want` items at cycle `cy`, consuming tokens.
    pub fn grant(&mut self, cy: Cycle, want: usize) -> usize {
        let avail = self.tokens_at(cy);
        let granted = (avail.floor() as usize).min(want);
        if granted > 0 {
            // Re-anchor only on consumption, so zero-grant calls leave the
            // limiter bit-identical to not having been called at all.
            self.tokens = avail - granted as f64;
            self.last_cycle = cy.max(self.last_cycle);
        }
        granted
    }

    /// Earliest cycle at or after `cy` at which [`grant`](Self::grant)
    /// would release at least one item — `Cycle::MAX` when the burst cap
    /// sits below one whole item and no grant can ever succeed.
    pub fn next_grant_at(&self, cy: Cycle) -> Cycle {
        if self.burst.max(self.rate) < 1.0 {
            return Cycle::MAX;
        }
        let from = cy.max(self.last_cycle);
        if self.tokens_at(from) >= 1.0 {
            return from;
        }
        // Estimate the elapsed cycles needed, then settle on the exact
        // first cycle using the same arithmetic `grant` evaluates — the
        // estimate may be one off either way in floating point.
        let need = ((1.0 - self.tokens) / self.rate).ceil();
        let mut at = if need.is_finite() && need >= 1.0 {
            (self.last_cycle + (need as u64).saturating_sub(1)).max(from)
        } else {
            from
        };
        while self.tokens_at(at) < 1.0 {
            at += 1;
        }
        at
    }

    /// The configured average rate in items per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// A [`StreamSource`] backed by an in-memory dataset, delivered through a
/// [`MemoryModel`]'s bandwidth budget.
///
/// Models the paper's offline experiments, where the full dataset resides in
/// the card's DDR4 and is streamed in bursts.
///
/// # Example
///
/// ```
/// use hls_sim::{MemoryModel, SliceSource, StreamSource};
///
/// let mem = MemoryModel::new(64, 0);
/// let mut src = SliceSource::new(vec![1u64, 2, 3, 4, 5], 8, mem);
/// let mut out = Vec::new();
/// src.pull(0, 16, &mut out);
/// assert_eq!(out, vec![1, 2, 3, 4, 5]); // 8 tuples/cycle budget covers all 5
/// assert!(src.exhausted());
/// ```
#[derive(Debug)]
pub struct SliceSource<T> {
    data: Vec<T>,
    next: usize,
    produced: u64,
    limiter: RateLimiter,
    latency: u64,
}

impl<T: Clone> SliceSource<T> {
    /// Creates a source over `data` with `tuple_bytes`-wide items flowing
    /// through the memory interface `mem`.
    pub fn new(data: Vec<T>, tuple_bytes: u32, mem: MemoryModel) -> Self {
        let rate = mem.tuples_per_cycle(tuple_bytes);
        SliceSource {
            data,
            next: 0,
            produced: 0,
            limiter: RateLimiter::new(rate, rate.ceil() as usize * 2),
            latency: mem.burst_latency,
        }
    }

    /// Remaining items not yet delivered.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.next
    }
}

impl<T: Clone + Send> StreamSource<T> for SliceSource<T> {
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<T>) -> usize {
        if cy < self.latency || self.next >= self.data.len() {
            return 0;
        }
        let want = max.min(self.data.len() - self.next);
        let granted = self.limiter.grant(cy, want);
        out.extend_from_slice(&self.data[self.next..self.next + granted]);
        self.next += granted;
        self.produced += granted as u64;
        granted
    }

    fn exhausted(&self) -> bool {
        self.next >= self.data.len()
    }

    fn produced(&self) -> u64 {
        self.produced
    }

    fn next_pull_at(&self, cy: Cycle) -> Cycle {
        if self.exhausted() {
            return Cycle::MAX;
        }
        // Before the burst latency `pull` returns early without touching
        // the limiter; afterwards the first productive cycle is the
        // limiter's next whole-token grant.
        self.limiter.next_grant_at(cy).max(self.latency)
    }
}

/// A [`StreamSource`] delivering an in-memory dataset in fixed-size bursts
/// on a fixed period — `burst` items become eligible every `period` cycles,
/// the first burst landing at cycle `latency`.
///
/// Models periodically arriving input (a network source delivering packet
/// batches, a DMA engine completing descriptors) whose average rate sits
/// well below the pipeline's peak — the regime where the engine's
/// fast-forward mode skips the idle gaps between bursts. Unreleased items
/// carry over: a consumer that falls behind can drain the backlog at full
/// speed.
///
/// # Example
///
/// ```
/// use hls_sim::{PacedSource, StreamSource};
///
/// // 2 items every 10 cycles, first burst at cycle 5.
/// let mut src = PacedSource::new(vec![1u32, 2, 3, 4], 2, 10, 5);
/// let mut out = Vec::new();
/// assert_eq!(src.pull(4, 16, &mut out), 0);
/// assert_eq!(src.pull(5, 16, &mut out), 2);
/// assert_eq!(src.next_pull_at(6), 15); // nothing more until the next burst
/// assert_eq!(src.pull(15, 16, &mut out), 2);
/// assert!(src.exhausted());
/// ```
#[derive(Debug)]
pub struct PacedSource<T> {
    data: Vec<T>,
    next: usize,
    produced: u64,
    burst: usize,
    period: u64,
    latency: u64,
}

impl<T> PacedSource<T> {
    /// Creates a source over `data` releasing `burst` items every `period`
    /// cycles, starting at cycle `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `burst` or `period` is zero.
    pub fn new(data: Vec<T>, burst: usize, period: u64, latency: u64) -> Self {
        assert!(burst > 0, "paced source burst must be nonzero");
        assert!(period > 0, "paced source period must be nonzero");
        PacedSource {
            data,
            next: 0,
            produced: 0,
            burst,
            period,
            latency,
        }
    }

    /// Items released (eligible to pull) by cycle `cy`.
    fn eligible(&self, cy: Cycle) -> usize {
        if cy < self.latency {
            return 0;
        }
        let bursts = (cy - self.latency) / self.period + 1;
        usize::try_from(bursts)
            .unwrap_or(usize::MAX)
            .saturating_mul(self.burst)
            .min(self.data.len())
    }

    /// Remaining items not yet delivered.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.next
    }
}

impl<T: Clone + Send> StreamSource<T> for PacedSource<T> {
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<T>) -> usize {
        let avail = self.eligible(cy).saturating_sub(self.next);
        let granted = avail.min(max);
        out.extend_from_slice(&self.data[self.next..self.next + granted]);
        self.next += granted;
        self.produced += granted as u64;
        granted
    }

    fn exhausted(&self) -> bool {
        self.next >= self.data.len()
    }

    fn produced(&self) -> u64 {
        self.produced
    }

    fn next_pull_at(&self, cy: Cycle) -> Cycle {
        if self.exhausted() {
            return Cycle::MAX;
        }
        if cy < self.latency {
            return self.latency;
        }
        if self.eligible(cy) > self.next {
            return cy;
        }
        // All released items consumed: the next burst lands one period
        // after the last one that already landed.
        let bursts = (cy - self.latency) / self.period + 1;
        self.latency + bursts * self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_model_budget() {
        let mem = MemoryModel::new(64, 10);
        assert_eq!(mem.tuples_per_cycle(8), 8.0);
        assert_eq!(mem.tuples_per_cycle(4), 16.0);
        assert_eq!(mem.tuples_per_cycle(64), 1.0);
    }

    #[test]
    fn rate_limiter_sub_unit_rate() {
        // 0.5 items/cycle: expect one grant every other cycle.
        let mut rl = RateLimiter::new(0.5, 1);
        let mut total = 0;
        for cy in 1..=20 {
            total += rl.grant(cy, 10);
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn rate_limiter_caps_burst() {
        let mut rl = RateLimiter::new(2.0, 4);
        // long idle period must not accumulate unbounded tokens
        let granted = rl.grant(1_000, 100);
        assert!(granted <= 4, "granted {granted} exceeds burst");
    }

    #[test]
    fn slice_source_respects_latency_and_rate() {
        let mem = MemoryModel::new(8, 5); // 1 tuple/cycle for 8-byte tuples
        let mut src = SliceSource::new((0u64..10).collect(), 8, mem);
        let mut out = Vec::new();
        assert_eq!(src.pull(0, 8, &mut out), 0); // before burst latency
        assert_eq!(src.pull(4, 8, &mut out), 0);
        let mut got = 0;
        for cy in 5..40 {
            got += src.pull(cy, 8, &mut out);
        }
        assert_eq!(got, 10);
        assert_eq!(out, (0u64..10).collect::<Vec<_>>());
        assert!(src.exhausted());
        assert_eq!(src.produced(), 10);
    }

    #[test]
    fn rate_limiter_next_grant_matches_grant() {
        // The predicted cycle must be exactly the first cycle `grant`
        // releases an item, for awkward fractional rates too.
        for &rate in &[0.1, 0.3, 0.5, 1.0, 2.5, 8.0] {
            let rl = RateLimiter::new(rate, 4);
            let mut probe = rl.clone();
            let predicted = rl.next_grant_at(1);
            let mut first = None;
            for cy in 1..=100 {
                if probe.grant(cy, 1) > 0 {
                    first = Some(cy);
                    break;
                }
            }
            assert_eq!(first, Some(predicted), "rate {rate}");
        }
    }

    #[test]
    fn rate_limiter_zero_grant_calls_are_invisible() {
        // Calling grant every cycle (all zero-grants) then once, vs once
        // after the gap, must agree bit-exactly — the fast-forward
        // equivalence contract.
        let mut stepped = RateLimiter::new(0.3, 2);
        let mut jumped = stepped.clone();
        let mut log_a = Vec::new();
        for cy in 1..=50 {
            log_a.push(stepped.grant(cy, 3));
        }
        let mut log_b = vec![0; 50];
        let mut cy = 1;
        while cy <= 50 {
            let at = jumped.next_grant_at(cy);
            if at > 50 {
                break;
            }
            log_b[(at - 1) as usize] = jumped.grant(at, 3);
            cy = at + 1;
        }
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn slice_source_next_pull_is_exact() {
        let mem = MemoryModel::new(4, 10); // 0.5 tuples/cycle for 8-byte tuples
        let mut src = SliceSource::new((0u64..4).collect(), 8, mem);
        let mut out = Vec::new();
        let mut cy = 0;
        let mut arrivals = Vec::new();
        while !src.exhausted() {
            let at = src.next_pull_at(cy);
            assert!(at >= 10, "latency gates the first pull");
            let n = src.pull(at, 8, &mut out);
            assert!(n > 0, "next_pull_at must point at a productive cycle");
            arrivals.push(at);
            cy = at + 1;
        }
        assert_eq!(out, (0u64..4).collect::<Vec<_>>());
        // A cycle-by-cycle replay of a fresh source sees the same arrivals.
        let mut replay = SliceSource::new((0u64..4).collect(), 8, MemoryModel::new(4, 10));
        let mut replay_arrivals = Vec::new();
        let mut buf = Vec::new();
        for cy in 0..100 {
            if replay.pull(cy, 8, &mut buf) > 0 {
                replay_arrivals.push(cy);
            }
        }
        assert_eq!(arrivals, replay_arrivals);
    }

    #[test]
    fn paced_source_releases_bursts_on_schedule() {
        let mut src = PacedSource::new((0u32..10).collect(), 3, 100, 20);
        let mut out = Vec::new();
        assert_eq!(src.next_pull_at(0), 20);
        assert_eq!(src.pull(19, 16, &mut out), 0);
        assert_eq!(src.pull(20, 16, &mut out), 3);
        assert_eq!(src.next_pull_at(21), 120);
        assert_eq!(src.pull(120, 16, &mut out), 3);
        // Backlog carries over when the consumer lags two periods.
        assert_eq!(src.pull(321, 16, &mut out), 4);
        assert!(src.exhausted());
        assert_eq!(src.next_pull_at(400), Cycle::MAX);
        assert_eq!(src.produced(), 10);
        assert_eq!(out, (0u32..10).collect::<Vec<_>>());
    }

    #[test]
    fn paced_source_partial_pull_keeps_remainder_eligible() {
        let mut src = PacedSource::new((0u32..8).collect(), 4, 50, 0);
        let mut out = Vec::new();
        assert_eq!(src.pull(0, 1, &mut out), 1);
        // The rest of the burst stays pullable immediately.
        assert_eq!(src.next_pull_at(1), 1);
        assert_eq!(src.pull(1, 16, &mut out), 3);
        assert_eq!(src.next_pull_at(2), 50);
    }

    #[test]
    fn slice_source_respects_max() {
        let mem = MemoryModel::new(64, 0); // 8/cycle
        let mut src = SliceSource::new((0u64..100).collect(), 8, mem);
        let mut out = Vec::new();
        // consumer only accepts 3 per cycle
        let n = src.pull(1, 3, &mut out);
        assert_eq!(n, 3);
    }
}
