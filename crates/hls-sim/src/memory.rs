//! Global-memory and streaming-input models.
//!
//! The paper's memory access engine coalesces requests and reads the DDR4
//! interface in bursts, delivering `Wmem / Wtuple` tuples per cycle at steady
//! state (§IV-C4). For the online-processing experiment (Fig. 9) the same
//! interface stands in for a 100 Gbps network source. Both reduce to the same
//! abstraction: a [`StreamSource`] that yields at most a rate-limited number
//! of items per cycle after an initial burst latency.

use crate::Cycle;

/// A cycle-aware producer of input items.
///
/// `pull` is called by the memory-reader kernel once per cycle with the
/// number of items the pipeline can accept; the source appends at most that
/// many to `out`. Implementations must be deterministic. Sources are `Send`
/// so that whole engines can move across sweep threads.
pub trait StreamSource<T>: Send {
    /// Appends up to `max` items available at cycle `cy` to `out`; returns
    /// the number appended.
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<T>) -> usize;

    /// `true` once the source will never produce another item.
    fn exhausted(&self) -> bool;

    /// Total items produced so far.
    fn produced(&self) -> u64;
}

/// Bandwidth model of the global-memory interface.
///
/// Converts interface width and tuple width into a per-cycle tuple budget
/// (Equation 1's `Wmem / Wtuple`) and captures the initial burst latency.
///
/// # Example
///
/// ```
/// use hls_sim::MemoryModel;
///
/// // The paper's platform: 64-byte (512-bit) interface, 8-byte tuples.
/// let mem = MemoryModel::new(64, 200);
/// assert_eq!(mem.tuples_per_cycle(8), 8.0);
/// assert_eq!(mem.tuples_per_cycle(16), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Interface width in bytes transferred per cycle (`Wmem`).
    pub bytes_per_cycle: u32,
    /// Cycles from issuing the first burst until data starts flowing.
    pub burst_latency: u64,
}

impl MemoryModel {
    /// Creates a model with the given interface width and burst latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u32, burst_latency: u64) -> Self {
        assert!(
            bytes_per_cycle > 0,
            "memory interface width must be nonzero"
        );
        MemoryModel {
            bytes_per_cycle,
            burst_latency,
        }
    }

    /// Steady-state tuples deliverable per cycle for `tuple_bytes`-wide
    /// tuples (`Wmem / Wtuple`).
    ///
    /// # Panics
    ///
    /// Panics if `tuple_bytes` is zero.
    pub fn tuples_per_cycle(&self, tuple_bytes: u32) -> f64 {
        assert!(tuple_bytes > 0, "tuple width must be nonzero");
        f64::from(self.bytes_per_cycle) / f64::from(tuple_bytes)
    }
}

impl Default for MemoryModel {
    /// The paper's platform: 64-byte interface, 200-cycle burst latency.
    fn default() -> Self {
        MemoryModel::new(64, 200)
    }
}

/// Fractional-rate token bucket used to rate-limit sources.
///
/// Accumulates `rate` tokens per elapsed cycle (rates below one item/cycle
/// are supported) up to one cycle's worth of headroom beyond the burst size,
/// and grants whole items on request.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    rate: f64,
    tokens: f64,
    last_cycle: Cycle,
    burst: f64,
}

impl RateLimiter {
    /// Creates a limiter releasing `rate` items per cycle on average, with a
    /// maximum accumulation (`burst`) of `burst_items`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64, burst_items: usize) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        // Cycle zero gets a full cycle's budget like every other cycle.
        RateLimiter {
            rate,
            tokens: rate,
            last_cycle: 0,
            burst: burst_items as f64,
        }
    }

    /// Grants up to `want` items at cycle `cy`, consuming tokens.
    pub fn grant(&mut self, cy: Cycle, want: usize) -> usize {
        if cy > self.last_cycle {
            let elapsed = (cy - self.last_cycle) as f64;
            self.tokens = (self.tokens + elapsed * self.rate).min(self.burst.max(self.rate));
            self.last_cycle = cy;
        }
        let granted = (self.tokens.floor() as usize).min(want);
        self.tokens -= granted as f64;
        granted
    }

    /// The configured average rate in items per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// A [`StreamSource`] backed by an in-memory dataset, delivered through a
/// [`MemoryModel`]'s bandwidth budget.
///
/// Models the paper's offline experiments, where the full dataset resides in
/// the card's DDR4 and is streamed in bursts.
///
/// # Example
///
/// ```
/// use hls_sim::{MemoryModel, SliceSource, StreamSource};
///
/// let mem = MemoryModel::new(64, 0);
/// let mut src = SliceSource::new(vec![1u64, 2, 3, 4, 5], 8, mem);
/// let mut out = Vec::new();
/// src.pull(0, 16, &mut out);
/// assert_eq!(out, vec![1, 2, 3, 4, 5]); // 8 tuples/cycle budget covers all 5
/// assert!(src.exhausted());
/// ```
#[derive(Debug)]
pub struct SliceSource<T> {
    data: Vec<T>,
    next: usize,
    produced: u64,
    limiter: RateLimiter,
    latency: u64,
}

impl<T: Clone> SliceSource<T> {
    /// Creates a source over `data` with `tuple_bytes`-wide items flowing
    /// through the memory interface `mem`.
    pub fn new(data: Vec<T>, tuple_bytes: u32, mem: MemoryModel) -> Self {
        let rate = mem.tuples_per_cycle(tuple_bytes);
        SliceSource {
            data,
            next: 0,
            produced: 0,
            limiter: RateLimiter::new(rate, rate.ceil() as usize * 2),
            latency: mem.burst_latency,
        }
    }

    /// Remaining items not yet delivered.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.next
    }
}

impl<T: Clone + Send> StreamSource<T> for SliceSource<T> {
    fn pull(&mut self, cy: Cycle, max: usize, out: &mut Vec<T>) -> usize {
        if cy < self.latency || self.next >= self.data.len() {
            return 0;
        }
        let want = max.min(self.data.len() - self.next);
        let granted = self.limiter.grant(cy, want);
        out.extend_from_slice(&self.data[self.next..self.next + granted]);
        self.next += granted;
        self.produced += granted as u64;
        granted
    }

    fn exhausted(&self) -> bool {
        self.next >= self.data.len()
    }

    fn produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_model_budget() {
        let mem = MemoryModel::new(64, 10);
        assert_eq!(mem.tuples_per_cycle(8), 8.0);
        assert_eq!(mem.tuples_per_cycle(4), 16.0);
        assert_eq!(mem.tuples_per_cycle(64), 1.0);
    }

    #[test]
    fn rate_limiter_sub_unit_rate() {
        // 0.5 items/cycle: expect one grant every other cycle.
        let mut rl = RateLimiter::new(0.5, 1);
        let mut total = 0;
        for cy in 1..=20 {
            total += rl.grant(cy, 10);
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn rate_limiter_caps_burst() {
        let mut rl = RateLimiter::new(2.0, 4);
        // long idle period must not accumulate unbounded tokens
        let granted = rl.grant(1_000, 100);
        assert!(granted <= 4, "granted {granted} exceeds burst");
    }

    #[test]
    fn slice_source_respects_latency_and_rate() {
        let mem = MemoryModel::new(8, 5); // 1 tuple/cycle for 8-byte tuples
        let mut src = SliceSource::new((0u64..10).collect(), 8, mem);
        let mut out = Vec::new();
        assert_eq!(src.pull(0, 8, &mut out), 0); // before burst latency
        assert_eq!(src.pull(4, 8, &mut out), 0);
        let mut got = 0;
        for cy in 5..40 {
            got += src.pull(cy, 8, &mut out);
        }
        assert_eq!(got, 10);
        assert_eq!(out, (0u64..10).collect::<Vec<_>>());
        assert!(src.exhausted());
        assert_eq!(src.produced(), 10);
    }

    #[test]
    fn slice_source_respects_max() {
        let mem = MemoryModel::new(64, 0); // 8/cycle
        let mut src = SliceSource::new((0u64..100).collect(), 8, mem);
        let mut out = Vec::new();
        // consumer only accepts 3 per cycle
        let n = src.pull(1, 3, &mut out);
        assert_eq!(n, 3);
    }
}
