//! The [`SimContext`]: the engine-owned channel and state arenas plus the
//! wake-flag plumbing of the idle-set scheduler.

use crate::channel::{ArenaSlot, BroadcastCore, ChannelCore};
use crate::state::StateArena;
use crate::{
    BcastReceiverId, BcastSenderId, ChannelAggregate, ChannelStats, CounterId, Cycle, RawChannelId,
    ReceiverId, SendError, SenderId, StateId,
};

/// Wake subscribers of one channel event, compact in the (overwhelmingly
/// common) zero/one-subscriber cases so firing an event is branch + store,
/// not a heap walk.
#[derive(Debug, Clone, Default)]
pub(crate) enum Subscribers {
    #[default]
    None,
    One(u32),
    Many(Vec<u32>),
}

impl Subscribers {
    fn add(&mut self, kernel: u32) {
        match self {
            Subscribers::None => *self = Subscribers::One(kernel),
            Subscribers::One(first) => *self = Subscribers::Many(vec![*first, kernel]),
            Subscribers::Many(v) => v.push(kernel),
        }
    }
}

/// Owns every channel and state register of a simulation and resolves the
/// typed id handles kernels hold.
///
/// A `&mut SimContext` is passed to every [`Kernel::step`](crate::Kernel::step);
/// all sends, receives and state accesses go through it. Successful sends
/// and pops also mark the subscribed kernels' wake flags, which is how
/// sleeping kernels are re-activated.
pub struct SimContext {
    channels: Vec<ArenaSlot>,
    /// Typed kernel-state registers and plain counters.
    pub(crate) arena: StateArena,
    /// Kernels to wake when a value is pushed into channel `c`.
    on_push: Vec<Subscribers>,
    /// Kernels to wake when a value is popped from channel `c`.
    on_pop: Vec<Subscribers>,
    /// Per-tap push subscribers of broadcast channel `c` (empty for plain
    /// channels): a broadcast push wakes tap `r`'s subscribers only when
    /// the item is relevant to `r` or the tap is not parked.
    on_push_tap: Vec<Vec<Subscribers>>,
    /// Union of all tap subscribers per channel — the push fast path when
    /// no tap is parked (one subscriber walk, like a plain channel).
    on_push_tap_merged: Vec<Subscribers>,
    /// Per-kernel wake flags (`true` = the kernel is awake). The byte
    /// store/load here is the measured-fastest event path at pipeline
    /// sizes of tens of kernels; the dense active *set* is maintained as
    /// the (`awake_count`, `scan_ahead`) pair bounding the engine's
    /// per-cycle loop, not as a materialized index list — see
    /// [`Engine::step`](crate::Engine::step) for why.
    pub(crate) wake: Vec<bool>,
    /// Maintained size of the active set — updated on every sleep/wake
    /// transition, so [`Engine::active_kernels`](crate::Engine::active_kernels)
    /// is O(1) instead of an O(n) flag recount.
    pub(crate) awake_count: u32,
    /// While a cycle is being stepped: number of awake kernels at or ahead
    /// of the scan position (the loop's termination bound). Wakes of
    /// later-indexed kernels raise it (they step this cycle); wakes behind
    /// the scan only raise `awake_count` (they step next cycle) — exactly
    /// the wake-flag-scan semantics.
    pub(crate) scan_ahead: u32,
    /// Broadcast channels with a relevance predicate — the engine runs
    /// their cold-tap catch-up at the end of every cycle.
    auto_channels: Vec<RawChannelId>,
    /// Kernel currently stepping (wakes targeting it are deferred to the
    /// sleep decision instead of the flag array).
    pub(crate) current_kernel: u32,
    /// Set when the currently stepping kernel triggered its own wake.
    pub(crate) self_woken: bool,
}

impl SimContext {
    pub(crate) fn new() -> Self {
        SimContext {
            channels: Vec::new(),
            arena: StateArena::default(),
            on_push: Vec::new(),
            on_pop: Vec::new(),
            on_push_tap: Vec::new(),
            on_push_tap_merged: Vec::new(),
            wake: Vec::new(),
            awake_count: 0,
            scan_ahead: 0,
            auto_channels: Vec::new(),
            current_kernel: u32::MAX,
            self_woken: false,
        }
    }

    /// Registers a channel slot with `readers` broadcast taps (zero for
    /// plain channels); auto-advancing slots join the end-of-cycle
    /// catch-up list.
    pub(crate) fn add_channel(&mut self, ch: ArenaSlot, readers: usize) -> RawChannelId {
        let id = self.channels.len() as RawChannelId;
        if ch.advance_fn.is_some() {
            self.auto_channels.push(id);
        }
        self.channels.push(ch);
        self.on_push.push(Subscribers::None);
        self.on_pop.push(Subscribers::None);
        self.on_push_tap.push(vec![Subscribers::None; readers]);
        self.on_push_tap_merged.push(Subscribers::None);
        id
    }

    pub(crate) fn subscribe_push(&mut self, ch: RawChannelId, kernel: u32) {
        assert!(
            (ch as usize) < self.channels.len(),
            "wake subscription references unknown channel {ch}"
        );
        self.on_push[ch as usize].add(kernel);
    }

    pub(crate) fn subscribe_push_tap(&mut self, ch: RawChannelId, reader: u32, kernel: u32) {
        let taps = self
            .on_push_tap
            .get_mut(ch as usize)
            .unwrap_or_else(|| panic!("wake subscription references unknown channel {ch}"));
        assert!(
            (reader as usize) < taps.len(),
            "wake subscription references unknown tap {reader} of channel {ch}"
        );
        taps[reader as usize].add(kernel);
        self.on_push_tap_merged[ch as usize].add(kernel);
    }

    pub(crate) fn subscribe_pop(&mut self, ch: RawChannelId, kernel: u32) {
        assert!(
            (ch as usize) < self.channels.len(),
            "wake subscription references unknown channel {ch}"
        );
        self.on_pop[ch as usize].add(kernel);
    }

    #[inline]
    fn chan<T: Send + 'static>(&self, idx: u32) -> &ChannelCore<T> {
        self.channels[idx as usize]
            .core
            .downcast_ref::<ChannelCore<T>>()
            .expect("channel id used with mismatched payload type")
    }

    #[inline]
    fn chan_mut<T: Send + 'static>(&mut self, idx: u32) -> &mut ChannelCore<T> {
        self.channels[idx as usize]
            .core
            .downcast_mut::<ChannelCore<T>>()
            .expect("channel id used with mismatched payload type")
    }

    #[inline]
    fn bcast<T: Send + 'static>(&self, idx: u32) -> &BroadcastCore<T> {
        self.channels[idx as usize]
            .core
            .downcast_ref::<BroadcastCore<T>>()
            .expect("broadcast id used with mismatched payload type")
    }

    #[inline]
    fn bcast_mut<T: Send + 'static>(&mut self, idx: u32) -> &mut BroadcastCore<T> {
        self.channels[idx as usize]
            .core
            .downcast_mut::<BroadcastCore<T>>()
            .expect("broadcast id used with mismatched payload type")
    }

    /// Wakes kernel `k`: sets its flag and maintains the active-set size.
    /// A wake ahead of the engine's scan position also raises the loop's
    /// remaining-work bound so the kernel steps this cycle; a wake behind
    /// it steps next cycle.
    #[inline]
    fn wake_one(
        k: u32,
        wake: &mut [bool],
        awake_count: &mut u32,
        scan_ahead: &mut u32,
        current: u32,
        self_woken: &mut bool,
    ) {
        if k == current {
            *self_woken = true;
        } else if !wake[k as usize] {
            wake[k as usize] = true;
            *awake_count += 1;
            // `current` is `u32::MAX` outside the step loop, so external
            // wakes never inflate the in-cycle bound.
            if k > current {
                *scan_ahead += 1;
            }
        }
    }

    #[inline]
    fn fire(
        subs: &Subscribers,
        wake: &mut [bool],
        awake_count: &mut u32,
        scan_ahead: &mut u32,
        current: u32,
        self_woken: &mut bool,
    ) {
        match subs {
            Subscribers::None => {}
            Subscribers::One(k) => {
                Self::wake_one(*k, wake, awake_count, scan_ahead, current, self_woken)
            }
            Subscribers::Many(v) => v.iter().for_each(|&k| {
                Self::wake_one(k, wake, awake_count, scan_ahead, current, self_woken)
            }),
        }
    }

    // ---- plain channels -------------------------------------------------

    /// Attempts to push `value` at cycle `cy`.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding the value if the FIFO is at capacity;
    /// the producing kernel should treat that as a pipeline stall and retry
    /// on a later cycle. Each failed attempt is counted as a *full stall* in
    /// the channel statistics.
    #[inline]
    pub fn try_send<T: Send + 'static>(
        &mut self,
        cy: Cycle,
        tx: SenderId<T>,
        value: T,
    ) -> Result<(), SendError<T>> {
        let result = self.chan_mut::<T>(tx.idx).try_send(cy, value);
        if result.is_ok() {
            Self::fire(
                &self.on_push[tx.idx as usize],
                &mut self.wake,
                &mut self.awake_count,
                &mut self.scan_ahead,
                self.current_kernel,
                &mut self.self_woken,
            );
        }
        result
    }

    /// Pops the oldest item if one is visible at cycle `cy`.
    ///
    /// Returns `None` when the FIFO is empty *or* its head was pushed less
    /// than `latency` cycles ago.
    #[inline]
    pub fn try_recv<T: Send + 'static>(&mut self, cy: Cycle, rx: ReceiverId<T>) -> Option<T> {
        let result = self.chan_mut::<T>(rx.idx).try_recv(cy);
        if result.is_some() {
            Self::fire(
                &self.on_pop[rx.idx as usize],
                &mut self.wake,
                &mut self.awake_count,
                &mut self.scan_ahead,
                self.current_kernel,
                &mut self.self_woken,
            );
        }
        result
    }

    /// Returns `true` when at least one item can be pushed through `tx`.
    #[inline]
    pub fn can_send<T: Send + 'static>(&self, tx: SenderId<T>) -> bool {
        let ch = self.chan::<T>(tx.idx);
        ch.queue.len() < ch.capacity
    }

    /// How many more items the FIFO behind `tx` can accept right now.
    #[inline]
    pub fn free_space<T: Send + 'static>(&self, tx: SenderId<T>) -> usize {
        let ch = self.chan::<T>(tx.idx);
        ch.capacity - ch.queue.len()
    }

    /// Returns `true` if an item is visible to `rx` at cycle `cy`.
    #[inline]
    pub fn can_recv<T: Send + 'static>(&self, cy: Cycle, rx: ReceiverId<T>) -> bool {
        self.chan::<T>(rx.idx).can_recv(cy)
    }

    /// Returns `true` when the FIFO holds no items at all (visible or not).
    #[inline]
    pub fn is_empty<T: Send + 'static>(&self, rx: ReceiverId<T>) -> bool {
        self.chan::<T>(rx.idx).queue.is_empty()
    }

    /// Number of items currently buffered behind `rx` (visible or not).
    #[inline]
    pub fn len<T: Send + 'static>(&self, rx: ReceiverId<T>) -> usize {
        self.chan::<T>(rx.idx).queue.len()
    }

    /// Returns `true` when the FIFO behind `tx` holds no items.
    #[inline]
    pub fn send_side_empty<T: Send + 'static>(&self, tx: SenderId<T>) -> bool {
        self.chan::<T>(tx.idx).queue.is_empty()
    }

    /// Visibility time of the FIFO's head item, or `None` when empty.
    ///
    /// Items queue with non-decreasing visibility, so this is the earliest
    /// cycle at which any receive through `rx` can succeed — the per-channel
    /// event a [`Kernel::hold_until`](crate::Kernel::hold_until)
    /// implementation bounds its horizon with.
    #[inline]
    pub fn recv_visible_at<T: Send + 'static>(&self, rx: ReceiverId<T>) -> Option<Cycle> {
        self.chan::<T>(rx.idx).front_visible_at()
    }

    // ---- broadcast channels --------------------------------------------

    /// Attempts to broadcast `value` to every reader tap at cycle `cy`.
    ///
    /// The push is atomic: it succeeds only when *every* tap has room
    /// (mirroring the combiner's all-datapaths gate), and the value is
    /// stored once regardless of fan-out.
    ///
    /// Push wakes are tap-scoped: each tap's subscribers fire unless the
    /// tap is [parked](Self::bcast_park) *and* the channel's relevance
    /// predicate declares the value a no-op for it — those taps are
    /// auto-advanced by the engine instead of being woken.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding the value when some tap is at capacity;
    /// the attempt is counted as a full stall.
    #[inline]
    pub fn bcast_try_send<T: Send + 'static>(
        &mut self,
        cy: Cycle,
        tx: BcastSenderId<T>,
        value: T,
    ) -> Result<(), SendError<T>> {
        let idx = tx.idx as usize;
        let core = self.channels[idx]
            .core
            .downcast_mut::<BroadcastCore<T>>()
            .expect("broadcast id used with mismatched payload type");
        let result = core.try_send(cy, value);
        if result.is_ok() {
            if core.cold_mask == 0 {
                // Fast path: no tap is parked, every tap wakes — one walk
                // of the merged subscriber list, exactly a plain push.
                Self::fire(
                    &self.on_push_tap_merged[idx],
                    &mut self.wake,
                    &mut self.awake_count,
                    &mut self.scan_ahead,
                    self.current_kernel,
                    &mut self.self_woken,
                );
            } else if self.on_push_tap[idx].len() > 64 {
                // Parked taps exist but the channel is too wide for the
                // cold machinery (only possible without a relevance
                // function): clear and fall back to waking everyone.
                core.cold_mask = 0;
                Self::fire(
                    &self.on_push_tap_merged[idx],
                    &mut self.wake,
                    &mut self.awake_count,
                    &mut self.scan_ahead,
                    self.current_kernel,
                    &mut self.self_woken,
                );
            } else {
                // One relevance call classifies the item for every tap.
                // Cold taps the item is relevant to re-activate and wake;
                // cold taps it is irrelevant to are left for the
                // end-of-cycle auto-advance without waking anyone.
                let readers = self.on_push_tap[idx].len() as u32;
                let all = u64::MAX >> (64 - readers);
                let relevant = core.newest_relevance();
                core.cold_mask &= !relevant;
                let mut wake_taps = all & !core.cold_mask;
                let taps = &self.on_push_tap[idx];
                while wake_taps != 0 {
                    let r = wake_taps.trailing_zeros() as usize;
                    wake_taps &= wake_taps - 1;
                    Self::fire(
                        &taps[r],
                        &mut self.wake,
                        &mut self.awake_count,
                        &mut self.scan_ahead,
                        self.current_kernel,
                        &mut self.self_woken,
                    );
                }
            }
        }
        result
    }

    /// Returns `true` when every reader tap can accept one more item.
    #[inline]
    pub fn bcast_can_send<T: Send + 'static>(&self, tx: BcastSenderId<T>) -> bool {
        self.bcast::<T>(tx.idx).can_send_all()
    }

    /// Applies `f` to the oldest unconsumed item of this reader tap if one
    /// is visible at `cy`, consuming it (for this tap only).
    ///
    /// The item is passed by reference because other taps may still need
    /// it; clone out whatever must outlive the call.
    #[inline]
    pub fn bcast_recv_map<T: Send + 'static, R>(
        &mut self,
        cy: Cycle,
        rx: BcastReceiverId<T>,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        let result = self
            .bcast_mut::<T>(rx.idx)
            .recv_map(cy, rx.reader as usize, f);
        if result.is_some() {
            Self::fire(
                &self.on_pop[rx.idx as usize],
                &mut self.wake,
                &mut self.awake_count,
                &mut self.scan_ahead,
                self.current_kernel,
                &mut self.self_woken,
            );
        }
        result
    }

    /// Combined receive: consumes and maps the tap's next visible item like
    /// [`bcast_recv_map`](Self::bcast_recv_map), additionally reporting
    /// whether the tap is completely empty when nothing was visible — one
    /// arena resolution instead of two for the common consume-or-park
    /// kernel pattern.
    #[inline]
    pub fn bcast_recv_or_empty<T: Send + 'static, R>(
        &mut self,
        cy: Cycle,
        rx: BcastReceiverId<T>,
        f: impl FnOnce(&T) -> R,
    ) -> crate::TapRecv<R> {
        let result = self
            .bcast_mut::<T>(rx.idx)
            .recv_or_empty(cy, rx.reader as usize, f);
        if matches!(result, crate::TapRecv::Got { .. }) {
            Self::fire(
                &self.on_pop[rx.idx as usize],
                &mut self.wake,
                &mut self.awake_count,
                &mut self.scan_ahead,
                self.current_kernel,
                &mut self.self_woken,
            );
        }
        result
    }

    /// Parks this broadcast tap: the caller (its consumer kernel) is about
    /// to [`Sleep`](crate::Progress::Sleep) on the empty tap. On channels
    /// created with a relevance predicate
    /// ([`Engine::broadcast_channel_with_relevance`](crate::Engine::broadcast_channel_with_relevance)),
    /// items irrelevant to a parked tap are consumed by the engine's
    /// end-of-cycle auto-advance — full cursor and statistics bookkeeping,
    /// no kernel wake-up — until a relevant item arrives and wakes the tap
    /// normally. On channels without a predicate parking is harmless:
    /// every push still wakes the tap.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the tap still buffers items.
    #[inline]
    pub fn bcast_park<T: Send + 'static>(&mut self, rx: BcastReceiverId<T>) {
        self.bcast_mut::<T>(rx.idx).park(rx.reader as usize);
    }

    /// Runs the cold-tap catch-up of every auto-advancing broadcast
    /// channel for cycle `cy`, firing pop wakes (backpressure release) for
    /// any cursor that moved. Called by the engine at the end of each
    /// cycle — the moment the parked consumers would have consumed the
    /// no-op items themselves.
    pub(crate) fn advance_cold_taps(&mut self, cy: Cycle) {
        for i in 0..self.auto_channels.len() {
            let idx = self.auto_channels[i] as usize;
            let slot = &mut self.channels[idx];
            let advance = slot.advance_fn.expect("auto channel has advance hook");
            let pops = advance(&mut *slot.core, cy);
            if pops > 0 {
                Self::fire(
                    &self.on_pop[idx],
                    &mut self.wake,
                    &mut self.awake_count,
                    &mut self.scan_ahead,
                    self.current_kernel,
                    &mut self.self_woken,
                );
            }
        }
    }

    /// Returns `true` if this tap has a visible item at cycle `cy`.
    #[inline]
    pub fn bcast_can_recv<T: Send + 'static>(&self, cy: Cycle, rx: BcastReceiverId<T>) -> bool {
        self.bcast::<T>(rx.idx).can_recv(cy, rx.reader as usize)
    }

    /// Returns `true` when this tap has no items at all (visible or not).
    #[inline]
    pub fn bcast_is_empty<T: Send + 'static>(&self, rx: BcastReceiverId<T>) -> bool {
        self.bcast::<T>(rx.idx).occupancy(rx.reader as usize) == 0
    }

    /// Number of items buffered for this tap (visible or not).
    #[inline]
    pub fn bcast_len<T: Send + 'static>(&self, rx: BcastReceiverId<T>) -> usize {
        self.bcast::<T>(rx.idx).occupancy(rx.reader as usize)
    }

    /// Visibility time of the item at this tap's cursor, or `None` when the
    /// tap buffers nothing — the broadcast analogue of
    /// [`recv_visible_at`](Self::recv_visible_at) for
    /// [`Kernel::hold_until`](crate::Kernel::hold_until) bounds.
    #[inline]
    pub fn bcast_recv_visible_at<T: Send + 'static>(
        &self,
        rx: BcastReceiverId<T>,
    ) -> Option<Cycle> {
        self.bcast::<T>(rx.idx)
            .tap_front_visible_at(rx.reader as usize)
    }

    /// Earliest upcoming cycle at which some auto-advancing broadcast
    /// channel's end-of-cycle cold-tap catch-up could pop (and fire pop
    /// wakes), or `None` when no such event is pending. The fast-forward
    /// detector never jumps past this — those pops are observable (stats,
    /// backpressure release, wakes).
    pub(crate) fn next_cold_tap_event(&self) -> Option<Cycle> {
        let mut earliest: Option<Cycle> = None;
        for &id in &self.auto_channels {
            let slot = &self.channels[id as usize];
            let next_event = slot.next_event_fn.expect("auto channel has event hook");
            if let Some(ev) = next_event(&*slot.core) {
                earliest = Some(earliest.map_or(ev, |e| e.min(ev)));
            }
        }
        earliest
    }

    // ---- explicit wakes -------------------------------------------------

    /// Wakes kernel `kernel` (a [`KernelId`](crate::KernelId) from
    /// [`Engine::add_kernel`](crate::Engine::add_kernel)).
    ///
    /// For protocol kernels whose inputs are side-band shared state rather
    /// than channels (the §IV-B drain/merge/requeue signals): the kernel
    /// driving the protocol wakes the affected kernels in the same cycle it
    /// mutates the shared state, so they may sleep in their quiescent
    /// phases without missing a transition.
    #[inline]
    pub fn wake_kernel(&mut self, kernel: u32) {
        Self::wake_one(
            kernel,
            &mut self.wake,
            &mut self.awake_count,
            &mut self.scan_ahead,
            self.current_kernel,
            &mut self.self_woken,
        );
    }

    // ---- state arena ----------------------------------------------------

    /// Borrows the state register behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is used with a mismatched type (ids are only issued by
    /// [`Engine::state`](crate::Engine::state), so this indicates handle
    /// misuse, not a data condition).
    #[inline]
    pub fn state<T: Send + 'static>(&self, id: StateId<T>) -> &T {
        self.arena.state(id)
    }

    /// Mutably borrows the state register behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is used with a mismatched type.
    #[inline]
    pub fn state_mut<T: Send + 'static>(&mut self, id: StateId<T>) -> &mut T {
        self.arena.state_mut(id)
    }

    /// Moves the state behind `id` out of the arena, leaving an empty slot.
    ///
    /// This is the end-of-run extraction path (merger folds, `finalize`):
    /// no `Arc` unwrapping, no engine teardown ordering. Any later access
    /// through the same id panics.
    ///
    /// # Panics
    ///
    /// Panics if the state was already taken or `id` has a mismatched type.
    pub fn take_state<T: Send + 'static>(&mut self, id: StateId<T>) -> T {
        self.arena.take_state(id)
    }

    /// Reads counter `id`.
    #[inline]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.arena.counter(id)
    }

    /// Adds `n` to counter `id`.
    #[inline]
    pub fn counter_add(&mut self, id: CounterId, n: u64) {
        self.arena.counter_add(id, n);
    }

    /// Adds one to counter `id`.
    #[inline]
    pub fn counter_incr(&mut self, id: CounterId) {
        self.arena.counter_add(id, 1);
    }

    /// Overwrites counter `id` with `value`.
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        self.arena.set_counter(id, value);
    }

    // ---- statistics -----------------------------------------------------

    /// Snapshots every channel's lifetime statistics, in creation order;
    /// broadcast channels contribute one entry per reader tap.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        let mut out = Vec::with_capacity(self.channels.len());
        for ch in &self.channels {
            ch.push_stats(&mut out);
        }
        out
    }

    /// Sums every channel's statistics without materialising the
    /// per-channel rows (or cloning their debug names) — the cheap
    /// aggregate a periodic observability publish reads. Folds with the
    /// same reader-tap expansion as [`channel_stats`](Self::channel_stats),
    /// so the totals match exactly.
    pub fn channel_aggregate(&self) -> ChannelAggregate {
        let mut agg = ChannelAggregate::default();
        for ch in &self.channels {
            ch.push_totals(&mut agg);
        }
        agg
    }
}

impl std::fmt::Debug for SimContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (states, counters) = self.arena.len();
        f.debug_struct("SimContext")
            .field("channels", &self.channels.len())
            .field("states", &states)
            .field("counters", &counters)
            .finish()
    }
}
