//! The [`Kernel`] trait: one hardware module, stepped once per cycle.

use crate::Cycle;

/// A hardware module in the dataflow pipeline.
///
/// Each kernel corresponds to one autorun OpenCL kernel in the paper's HLS
/// design (a PrePE, a mapper, the combiner, a decoder/filter pair, a
/// PriPE/SecPE, the runtime profiler, the merger, …). The [`Engine`] calls
/// [`Kernel::step`] exactly once per simulated clock cycle, in registration
/// order. All communication with other kernels must go through
/// [`Channel`](crate::Channel)s so that bounded capacity models backpressure.
///
/// A kernel that cannot make progress this cycle (input empty, output full,
/// initiation-interval budget exhausted) simply returns without effect —
/// exactly like a stalled pipeline stage.
pub trait Kernel {
    /// Stable debug name used in engine reports.
    fn name(&self) -> &str;

    /// Advances the module by one clock cycle `cy`.
    fn step(&mut self, cy: Cycle);

    /// Reports whether the kernel has no internal pending work.
    ///
    /// The engine declares the simulation *quiescent* — and
    /// [`Engine::run_until_quiescent`](crate::Engine::run_until_quiescent)
    /// returns — once every kernel is idle for a full settling window.
    /// Kernels with upstream work they cannot see (e.g. waiting on a channel)
    /// should report idleness based on their own state only; the engine
    /// combines all kernels' answers.
    fn is_idle(&self) -> bool {
        false
    }
}

impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn step(&mut self, cy: Cycle) {
        (**self).step(cy)
    }

    fn is_idle(&self) -> bool {
        (**self).is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop(u32);
    impl Kernel for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn step(&mut self, _cy: Cycle) {
            self.0 += 1;
        }
        fn is_idle(&self) -> bool {
            true
        }
    }

    #[test]
    fn boxed_kernel_delegates() {
        let mut k: Box<dyn Kernel> = Box::new(Nop(0));
        k.step(0);
        assert_eq!(k.name(), "nop");
        assert!(k.is_idle());
    }
}
