//! The [`Kernel`] trait: one hardware module, stepped once per cycle.

use crate::{
    BcastReceiverId, BcastSenderId, Cycle, RawChannelId, ReceiverId, SenderId, SimContext,
};

/// What a kernel reports back to the engine's idle-set scheduler after one
/// `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The kernel did work — or may do work next cycle without any new
    /// channel event (internal timers, pending retries that must count
    /// stalls, protocol phases). The engine will step it again.
    Busy,
    /// `step` is guaranteed to be a no-op until one of the channels in the
    /// kernel's [`wake_set`](Kernel::wake_set) sees the subscribed activity.
    /// The engine stops stepping the kernel until then.
    ///
    /// Contract: a sleeping kernel must be externally unobservable — its
    /// skipped steps would not have changed any state — and must report
    /// [`is_idle`](Kernel::is_idle) truthfully if queried while asleep
    /// (its idle status cannot change while it sleeps, because only its own
    /// `step` mutates its internals and only subscribed channel activity
    /// changes its inputs).
    Sleep,
}

/// Wake subscriptions of a kernel: which channel events pull it out of
/// [`Progress::Sleep`].
///
/// Build one from the kernel's channel handles:
///
/// * [`after_push_on`](WakeSet::after_push_on) — wake when a value is pushed
///   into a channel the kernel *reads* (new input available);
/// * [`after_pop_on`](WakeSet::after_pop_on) — wake when a value is popped
///   from a channel the kernel *writes* (backpressure released).
#[derive(Debug, Clone, Default)]
pub struct WakeSet {
    pub(crate) on_push: Vec<RawChannelId>,
    pub(crate) on_pop: Vec<RawChannelId>,
    /// Broadcast push subscriptions carry the reader tap, so a push can
    /// wake exactly the taps it is relevant to (the cold-tap auto-advance
    /// never wakes a parked tap for a zero-mask item).
    pub(crate) on_push_bcast: Vec<(RawChannelId, u32)>,
}

impl WakeSet {
    /// An empty wake set (a kernel that never sleeps needs no more).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake after a push into the channel read through `rx`.
    pub fn after_push_on<T>(mut self, rx: ReceiverId<T>) -> Self {
        self.on_push.push(rx.raw());
        self
    }

    /// Wake after a push into the broadcast group read through `rx`.
    ///
    /// The subscription is tap-scoped: on channels created with a
    /// [relevance predicate](crate::Engine::broadcast_channel_with_relevance),
    /// a push that is irrelevant to a [parked](crate::SimContext::bcast_park)
    /// tap does not fire this wake — the engine auto-advances the tap's
    /// cursor instead.
    pub fn after_push_on_bcast<T>(mut self, rx: BcastReceiverId<T>) -> Self {
        self.on_push_bcast.push((rx.raw(), rx.reader()));
        self
    }

    /// Wake after a pop from the channel written through `tx`.
    pub fn after_pop_on<T>(mut self, tx: SenderId<T>) -> Self {
        self.on_pop.push(tx.raw());
        self
    }

    /// Wake after any reader tap advances in the broadcast group written
    /// through `tx`.
    pub fn after_pop_on_bcast<T>(mut self, tx: BcastSenderId<T>) -> Self {
        self.on_pop.push(tx.raw());
        self
    }
}

/// A hardware module in the dataflow pipeline.
///
/// Each kernel corresponds to one autorun OpenCL kernel in the paper's HLS
/// design (a PrePE, a mapper, the combiner, a decoder/filter pair, a
/// PriPE/SecPE, the runtime profiler, the merger, …). The
/// [`Engine`](crate::Engine) calls [`Kernel::step`] once per simulated clock
/// cycle, in registration order, passing the [`SimContext`] that owns every
/// channel. All communication with other kernels must go through channels so
/// that bounded capacity models backpressure.
///
/// A kernel that cannot make progress this cycle (input empty, output full,
/// initiation-interval budget exhausted) simply returns without effect —
/// exactly like a stalled pipeline stage. If it can additionally *prove*
/// that every future step will be a no-op until new channel activity
/// arrives, it returns [`Progress::Sleep`] and the engine's idle-set
/// scheduler stops visiting it until a subscribed event fires — this is what
/// makes mostly-quiescent pipelines (the common case under skew) cheap to
/// simulate.
pub trait Kernel: Send {
    /// Stable debug name used in engine reports.
    fn name(&self) -> &str;

    /// Advances the module by one clock cycle `cy`.
    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress;

    /// Reports whether the kernel has no internal pending work.
    ///
    /// The engine declares the simulation *quiescent* — and
    /// [`Engine::run_until_quiescent`](crate::Engine::run_until_quiescent)
    /// returns — once every kernel is idle for a full settling window.
    /// Kernels with upstream work they cannot see (e.g. waiting on a
    /// channel) should report idleness based on their own state only; the
    /// engine combines all kernels' answers.
    fn is_idle(&self, _ctx: &SimContext) -> bool {
        false
    }

    /// The channel events that wake this kernel from [`Progress::Sleep`].
    /// Queried once at registration. A kernel that ever returns `Sleep`
    /// must subscribe to every event that could make its `step` do work
    /// again.
    fn wake_set(&self) -> WakeSet {
        WakeSet::default()
    }

    /// Reports, for the fast-forward detector, the earliest future cycle at
    /// which this kernel's `step` might do observable work.
    ///
    /// Returning `Some(h)` with `h > cy` asserts: *every* `step` with a
    /// cycle argument in `cy..h` is an observational no-op — it mutates no
    /// channel, counter, state register or statistic (including stall
    /// counters), provided no subscribed wake event fires in the meantime.
    /// `Some(`[`Cycle::MAX`]`)` means "a no-op until a wake event", the same
    /// claim [`Progress::Sleep`] makes. Returning `None` (the default)
    /// opts out: the engine steps the kernel cycle by cycle.
    ///
    /// The engine only consults awake kernels, and only jumps when every
    /// one of them returns `Some`; the jump is additionally bounded by
    /// channel-visibility events, so a conservative-but-correct bound (too
    /// *early* a horizon) costs performance, never correctness. Too *late*
    /// a horizon breaks cycle accuracy — when in doubt return `None`.
    fn hold_until(&self, _cy: Cycle, _ctx: &SimContext) -> Option<Cycle> {
        None
    }

    /// Marks this kernel as a *quiescence gate*: the pipeline can only be
    /// quiescent once every gate is idle, so
    /// [`run_until_quiescent`](crate::Engine::run_until_quiescent) checks
    /// the gates first and consults the full population only while all
    /// gates are idle. Sources are natural gates — a pipeline cannot drain
    /// while its source still has data — and declaring them turns the
    /// per-cycle idle scan into a single call for the bulk of a run.
    ///
    /// Queried once at registration. Purely an optimisation: completion
    /// cycles are identical with or without gates.
    fn is_quiescence_gate(&self) -> bool {
        false
    }
}

impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn step(&mut self, cy: Cycle, ctx: &mut SimContext) -> Progress {
        (**self).step(cy, ctx)
    }

    fn is_idle(&self, ctx: &SimContext) -> bool {
        (**self).is_idle(ctx)
    }

    fn wake_set(&self) -> WakeSet {
        (**self).wake_set()
    }

    fn hold_until(&self, cy: Cycle, ctx: &SimContext) -> Option<Cycle> {
        (**self).hold_until(cy, ctx)
    }

    fn is_quiescence_gate(&self) -> bool {
        (**self).is_quiescence_gate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop(u32);
    impl Kernel for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn step(&mut self, _cy: Cycle, _ctx: &mut SimContext) -> Progress {
            self.0 += 1;
            Progress::Busy
        }
        fn is_idle(&self, _ctx: &SimContext) -> bool {
            true
        }
    }

    #[test]
    fn boxed_kernel_delegates() {
        let mut engine = crate::Engine::new();
        let ctx = engine.context_mut();
        let mut k: Box<dyn Kernel> = Box::new(Nop(0));
        assert_eq!(k.step(0, ctx), Progress::Busy);
        assert_eq!(k.name(), "nop");
        assert!(k.is_idle(ctx));
        assert!(k.wake_set().on_push.is_empty());
    }
}
