//! Property-style tests for channel FIFO semantics — the invariants every
//! simulated pipeline relies on — driven by deterministic op sequences (the
//! offline build has no proptest). Channels are driven directly through the
//! engine's [`SimContext`], outside any kernel.

use hls_sim::Engine;

/// Deterministic 64-bit generator for op-sequence synthesis.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whatever interleaving of sends and receives happens, the received
/// sequence is a prefix-order-preserving subsequence of the sent one.
#[test]
fn fifo_order_under_arbitrary_interleaving() {
    let mut s = 0xf1f0u64;
    for case in 0..128 {
        let ops = 1 + (splitmix(&mut s) % 199) as usize;
        let capacity = 1 + (splitmix(&mut s) % 15) as usize;
        let latency = splitmix(&mut s) % 4;
        let mut engine = Engine::new();
        let (tx, rx) = engine.channel_with_latency::<u64>("t", capacity, latency);
        let ctx = engine.context_mut();
        let mut sent = 0u64;
        let mut received = Vec::new();
        for cy in 0..ops as u64 {
            if splitmix(&mut s).is_multiple_of(2) {
                if ctx.try_send(cy, tx, sent).is_ok() {
                    sent += 1;
                }
            } else if let Some(v) = ctx.try_recv(cy, rx) {
                received.push(v);
            }
        }
        // FIFO: received values are exactly 0..k in order.
        for (i, &v) in received.iter().enumerate() {
            assert_eq!(v, i as u64, "case {case}");
        }
        assert!(received.len() as u64 <= sent, "case {case}");
    }
}

/// Occupancy never exceeds capacity, and stats balance.
#[test]
fn capacity_and_stats_invariants() {
    let mut s = 0xcafeu64;
    for case in 0..128 {
        let ops = 1 + (splitmix(&mut s) % 199) as usize;
        let capacity = 1 + (splitmix(&mut s) % 7) as usize;
        let mut engine = Engine::new();
        let (tx, rx) = engine.channel::<u64>("t", capacity);
        let ctx = engine.context_mut();
        for cy in 0..ops as u64 {
            if splitmix(&mut s).is_multiple_of(2) {
                let _ = ctx.try_send(cy, tx, cy);
            } else {
                let _ = ctx.try_recv(cy, rx);
            }
            let st = &ctx.channel_stats()[0];
            assert!(st.occupancy <= capacity, "case {case}");
            assert!(st.max_occupancy <= capacity, "case {case}");
            assert_eq!(st.in_flight(), st.occupancy as u64, "case {case}");
        }
    }
}

/// An item is never visible before its latency has elapsed.
#[test]
fn latency_is_respected() {
    for latency in 0u64..8 {
        for send_cy in [0u64, 1, 17, 99] {
            let mut engine = Engine::new();
            let (tx, rx) = engine.channel_with_latency::<u8>("t", 4, latency);
            let ctx = engine.context_mut();
            ctx.try_send(send_cy, tx, 1u8).unwrap();
            if latency > 0 {
                assert_eq!(ctx.try_recv(send_cy + latency - 1, rx), None);
            }
            assert_eq!(ctx.try_recv(send_cy + latency, rx), Some(1));
        }
    }
}

/// Broadcast taps behave exactly like independent channels fed the same
/// atomic pushes: per-tap FIFO order, per-tap latency, slowest-tap gating.
#[test]
fn broadcast_taps_mirror_plain_channels() {
    let mut s = 0xb44du64;
    for case in 0..64 {
        let capacity = 1 + (splitmix(&mut s) % 7) as usize;
        let readers = 1 + (splitmix(&mut s) % 4) as usize;
        let mut engine = Engine::new();
        let (btx, brx) = engine.broadcast_channel::<u64>("w", readers, capacity);
        let ctx = engine.context_mut();
        let mut sent = 0u64;
        let mut received = vec![Vec::new(); readers];
        for cy in 0..200u64 {
            match splitmix(&mut s) % (readers as u64 + 1) {
                0 => {
                    if ctx.bcast_try_send(cy, btx, sent).is_ok() {
                        sent += 1;
                    }
                }
                r => {
                    let r = (r - 1) as usize;
                    if let Some(v) = ctx.bcast_recv_map(cy, brx[r], |&v| v) {
                        received[r].push(v);
                    }
                }
            }
        }
        for (r, recv) in received.iter().enumerate() {
            for (i, &v) in recv.iter().enumerate() {
                assert_eq!(v, i as u64, "case {case} reader {r}");
            }
            assert!(recv.len() as u64 <= sent, "case {case} reader {r}");
        }
        let stats = ctx.channel_stats();
        assert_eq!(stats.len(), readers);
        for (r, st) in stats.iter().enumerate() {
            assert_eq!(st.pushes, sent, "case {case} reader {r}");
            assert_eq!(st.pops, received[r].len() as u64, "case {case} reader {r}");
            assert!(st.occupancy <= capacity, "case {case} reader {r}");
        }
    }
}
