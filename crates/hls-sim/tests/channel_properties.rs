//! Property tests for channel FIFO semantics — the invariants every
//! simulated pipeline relies on.

use hls_sim::Channel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever interleaving of sends and receives happens, the received
    /// sequence is a prefix-order-preserving subsequence of the sent one.
    #[test]
    fn fifo_order_under_arbitrary_interleaving(
        ops in prop::collection::vec(any::<bool>(), 1..200),
        capacity in 1usize..16,
        latency in 0u64..4,
    ) {
        let ch = Channel::with_latency("t", capacity, latency);
        let (tx, rx) = ch.endpoints();
        let mut sent = 0u64;
        let mut received = Vec::new();
        for (cy, &do_send) in ops.iter().enumerate() {
            let cy = cy as u64;
            if do_send {
                if tx.try_send(cy, sent).is_ok() {
                    sent += 1;
                }
            } else if let Some(v) = rx.try_recv(cy) {
                received.push(v);
            }
        }
        // FIFO: received values are exactly 0..k in order.
        for (i, &v) in received.iter().enumerate() {
            prop_assert_eq!(v, i as u64);
        }
        prop_assert!(received.len() as u64 <= sent);
    }

    /// Occupancy never exceeds capacity, and stats balance.
    #[test]
    fn capacity_and_stats_invariants(
        ops in prop::collection::vec(any::<bool>(), 1..200),
        capacity in 1usize..8,
    ) {
        let ch = Channel::new("t", capacity);
        let (tx, rx) = ch.endpoints();
        for (cy, &do_send) in ops.iter().enumerate() {
            let cy = cy as u64;
            if do_send {
                let _ = tx.try_send(cy, cy);
            } else {
                let _ = rx.try_recv(cy);
            }
            let st = ch.stats();
            prop_assert!(st.occupancy <= capacity);
            prop_assert!(st.max_occupancy <= capacity);
            prop_assert_eq!(st.in_flight(), st.occupancy as u64);
        }
    }

    /// An item is never visible before its latency has elapsed.
    #[test]
    fn latency_is_respected(latency in 0u64..8, send_cy in 0u64..100) {
        let ch = Channel::with_latency("t", 4, latency);
        let (tx, rx) = ch.endpoints();
        tx.try_send(send_cy, 1u8).unwrap();
        if latency > 0 {
            prop_assert_eq!(rx.try_recv(send_cy + latency - 1), None);
        }
        prop_assert_eq!(rx.try_recv(send_cy + latency), Some(1));
    }
}
