//! Property-style tests for channel FIFO semantics — the invariants every
//! simulated pipeline relies on — driven by deterministic op sequences (the
//! offline build has no proptest). Channels are driven directly through the
//! engine's [`SimContext`], outside any kernel.

use hls_sim::Engine;

/// Deterministic 64-bit generator for op-sequence synthesis.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whatever interleaving of sends and receives happens, the received
/// sequence is a prefix-order-preserving subsequence of the sent one.
#[test]
fn fifo_order_under_arbitrary_interleaving() {
    let mut s = 0xf1f0u64;
    for case in 0..128 {
        let ops = 1 + (splitmix(&mut s) % 199) as usize;
        let capacity = 1 + (splitmix(&mut s) % 15) as usize;
        let latency = splitmix(&mut s) % 4;
        let mut engine = Engine::new();
        let (tx, rx) = engine.channel_with_latency::<u64>("t", capacity, latency);
        let ctx = engine.context_mut();
        let mut sent = 0u64;
        let mut received = Vec::new();
        for cy in 0..ops as u64 {
            if splitmix(&mut s).is_multiple_of(2) {
                if ctx.try_send(cy, tx, sent).is_ok() {
                    sent += 1;
                }
            } else if let Some(v) = ctx.try_recv(cy, rx) {
                received.push(v);
            }
        }
        // FIFO: received values are exactly 0..k in order.
        for (i, &v) in received.iter().enumerate() {
            assert_eq!(v, i as u64, "case {case}");
        }
        assert!(received.len() as u64 <= sent, "case {case}");
    }
}

/// Occupancy never exceeds capacity, and stats balance.
#[test]
fn capacity_and_stats_invariants() {
    let mut s = 0xcafeu64;
    for case in 0..128 {
        let ops = 1 + (splitmix(&mut s) % 199) as usize;
        let capacity = 1 + (splitmix(&mut s) % 7) as usize;
        let mut engine = Engine::new();
        let (tx, rx) = engine.channel::<u64>("t", capacity);
        let ctx = engine.context_mut();
        for cy in 0..ops as u64 {
            if splitmix(&mut s).is_multiple_of(2) {
                let _ = ctx.try_send(cy, tx, cy);
            } else {
                let _ = ctx.try_recv(cy, rx);
            }
            let st = &ctx.channel_stats()[0];
            assert!(st.occupancy <= capacity, "case {case}");
            assert!(st.max_occupancy <= capacity, "case {case}");
            assert_eq!(st.in_flight(), st.occupancy as u64, "case {case}");
        }
    }
}

/// An item is never visible before its latency has elapsed.
#[test]
fn latency_is_respected() {
    for latency in 0u64..8 {
        for send_cy in [0u64, 1, 17, 99] {
            let mut engine = Engine::new();
            let (tx, rx) = engine.channel_with_latency::<u8>("t", 4, latency);
            let ctx = engine.context_mut();
            ctx.try_send(send_cy, tx, 1u8).unwrap();
            if latency > 0 {
                assert_eq!(ctx.try_recv(send_cy + latency - 1, rx), None);
            }
            assert_eq!(ctx.try_recv(send_cy + latency, rx), Some(1));
        }
    }
}

/// Broadcast taps behave exactly like independent channels fed the same
/// atomic pushes: per-tap FIFO order, per-tap latency, slowest-tap gating.
#[test]
fn broadcast_taps_mirror_plain_channels() {
    let mut s = 0xb44du64;
    for case in 0..64 {
        let capacity = 1 + (splitmix(&mut s) % 7) as usize;
        let readers = 1 + (splitmix(&mut s) % 4) as usize;
        let mut engine = Engine::new();
        let (btx, brx) = engine.broadcast_channel::<u64>("w", readers, capacity);
        let ctx = engine.context_mut();
        let mut sent = 0u64;
        let mut received = vec![Vec::new(); readers];
        for cy in 0..200u64 {
            match splitmix(&mut s) % (readers as u64 + 1) {
                0 => {
                    if ctx.bcast_try_send(cy, btx, sent).is_ok() {
                        sent += 1;
                    }
                }
                r => {
                    let r = (r - 1) as usize;
                    if let Some(v) = ctx.bcast_recv_map(cy, brx[r], |&v| v) {
                        received[r].push(v);
                    }
                }
            }
        }
        for (r, recv) in received.iter().enumerate() {
            for (i, &v) in recv.iter().enumerate() {
                assert_eq!(v, i as u64, "case {case} reader {r}");
            }
            assert!(recv.len() as u64 <= sent, "case {case} reader {r}");
        }
        let stats = ctx.channel_stats();
        assert_eq!(stats.len(), readers);
        for (r, st) in stats.iter().enumerate() {
            assert_eq!(st.pushes, sent, "case {case} reader {r}");
            assert_eq!(st.pops, received[r].len() as u64, "case {case} reader {r}");
            assert!(st.occupancy <= capacity, "case {case} reader {r}");
        }
    }
}

/// Naive reference model of one auto-advancing broadcast channel: `R`
/// independent FIFOs fed the same atomic pushes, where a parked tap
/// auto-pops items outside the relevance mask at the end of the cycle
/// they become visible, and a relevant push un-parks the tap.
struct RefModel {
    capacity: usize,
    latency: u64,
    /// Per tap: items as (value, visible_at), front = oldest unconsumed.
    taps: Vec<std::collections::VecDeque<(u64, u64)>>,
    parked: Vec<bool>,
    pushes: u64,
    pops: Vec<u64>,
    full_stalls: u64,
    max_occupancy: Vec<usize>,
}

impl RefModel {
    fn new(readers: usize, capacity: usize, latency: u64) -> Self {
        RefModel {
            capacity,
            latency,
            taps: vec![std::collections::VecDeque::new(); readers],
            parked: vec![false; readers],
            pushes: 0,
            pops: vec![0; readers],
            full_stalls: 0,
            max_occupancy: vec![0; readers],
        }
    }

    fn try_send(&mut self, cy: u64, value: u64) -> bool {
        if self.taps.iter().any(|t| t.len() >= self.capacity) {
            self.full_stalls += 1;
            return false;
        }
        for (r, tap) in self.taps.iter_mut().enumerate() {
            if self.parked[r] && value & (1 << r) != 0 {
                self.parked[r] = false;
            }
            tap.push_back((value, cy + self.latency));
            self.max_occupancy[r] = self.max_occupancy[r].max(tap.len());
        }
        self.pushes += 1;
        true
    }

    fn try_recv(&mut self, cy: u64, r: usize) -> Option<u64> {
        match self.taps[r].front() {
            Some(&(v, vis)) if vis <= cy => {
                self.taps[r].pop_front();
                self.pops[r] += 1;
                self.parked[r] = false;
                Some(v)
            }
            _ => None,
        }
    }

    /// End-of-cycle auto-advance: parked taps consume their visible
    /// (necessarily irrelevant) front items.
    fn end_cycle(&mut self, cy: u64) {
        for (r, tap) in self.taps.iter_mut().enumerate() {
            if !self.parked[r] {
                continue;
            }
            while matches!(tap.front(), Some(&(_, vis)) if vis <= cy) {
                let (v, _) = tap.pop_front().expect("checked");
                assert_eq!(v & (1 << r), 0, "parked tap held a relevant item");
                self.pops[r] += 1;
            }
        }
    }
}

/// The auto-advance broadcast core must match the naive reference model on
/// delivered items, cursor positions (observed as per-tap occupancy) and
/// per-reader statistics, under arbitrary interleavings of pushes with
/// random zero/nonzero relevance masks, receives and parks.
#[test]
fn auto_advance_broadcast_matches_reference_model() {
    let mut s = 0xd17704u64;
    for case in 0..96 {
        let readers = 1 + (splitmix(&mut s) % 6) as usize;
        let capacity = 1 + (splitmix(&mut s) % 7) as usize;
        let mut engine = Engine::new();
        // Relevance mask of an item is simply its low `readers` bits, so
        // random values exercise zero masks, partial masks and full masks.
        let (btx, brx) =
            engine.broadcast_channel_with_relevance::<u64>("w", readers, capacity, |&v| v);
        let mut model = RefModel::new(readers, capacity, hls_sim::DEFAULT_LATENCY);
        let mut delivered = vec![Vec::new(); readers];
        let mut model_delivered = vec![Vec::new(); readers];
        for _ in 0..160 {
            let cy = engine.cycle();
            let ctx = engine.context_mut();
            // At most one push per cycle (the auto-advance contract).
            if !splitmix(&mut s).is_multiple_of(4) {
                let mask_bits = splitmix(&mut s) % (1 << readers);
                let value = mask_bits; // value == relevance mask
                let sent = ctx.bcast_try_send(cy, btx, value).is_ok();
                assert_eq!(sent, model.try_send(cy, value), "case {case} cy {cy}");
            }
            // Random receives and parks per tap.
            for r in 0..readers {
                match splitmix(&mut s) % 3 {
                    0 => {
                        let got = ctx.bcast_recv_map(cy, brx[r], |&v| v);
                        assert_eq!(got, model.try_recv(cy, r), "case {case} cy {cy} tap {r}");
                        if let Some(v) = got {
                            delivered[r].push(v);
                            model_delivered[r].push(v);
                        }
                    }
                    // Parking requires an empty tap (the kernel contract:
                    // park only when going to sleep on emptiness).
                    1 if ctx.bcast_is_empty(brx[r]) => {
                        ctx.bcast_park(brx[r]);
                        model.parked[r] = true;
                    }
                    _ => {}
                }
            }
            // End of cycle: the engine auto-advances cold taps; the model
            // mirrors it.
            engine.step();
            model.end_cycle(cy);
            // Cursor positions: per-tap occupancy must agree after every
            // cycle.
            let ctx = engine.context();
            for (r, &rx) in brx.iter().enumerate() {
                assert_eq!(
                    ctx.bcast_len(rx),
                    model.taps[r].len(),
                    "case {case} cy {cy} tap {r} occupancy"
                );
            }
            // Per-reader statistics.
            let stats = ctx.channel_stats();
            for (r, st) in stats.iter().enumerate() {
                assert_eq!(st.pushes, model.pushes, "case {case} tap {r} pushes");
                assert_eq!(st.pops, model.pops[r], "case {case} tap {r} pops");
                assert_eq!(
                    st.full_stalls, model.full_stalls,
                    "case {case} tap {r} stalls"
                );
                assert_eq!(
                    st.max_occupancy, model.max_occupancy[r],
                    "case {case} tap {r} max occupancy"
                );
                assert_eq!(
                    st.occupancy,
                    model.taps[r].len(),
                    "case {case} tap {r} occupancy stat"
                );
            }
        }
        assert_eq!(delivered, model_delivered, "case {case} delivered items");
    }
}

/// The allocation-free `channel_aggregate` equals a fold of the full
/// per-channel `channel_stats` snapshot, across random mixes of plain and
/// broadcast channels under random traffic.
#[test]
fn channel_aggregate_matches_stats_fold() {
    let mut s = 0xa66au64;
    for case in 0..64 {
        let mut engine = Engine::new();
        let plain = 1 + (splitmix(&mut s) % 4) as usize;
        let bcast = (splitmix(&mut s) % 3) as usize;
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for i in 0..plain {
            let capacity = 1 + (splitmix(&mut s) % 7) as usize;
            let (tx, rx) = engine.channel::<u64>(&format!("p{i}"), capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        let mut btxs = Vec::new();
        let mut brxs = Vec::new();
        for i in 0..bcast {
            let capacity = 1 + (splitmix(&mut s) % 7) as usize;
            let readers = 1 + (splitmix(&mut s) % 4) as usize;
            let (btx, brx) = engine.broadcast_channel::<u64>(&format!("b{i}"), readers, capacity);
            btxs.push(btx);
            brxs.push(brx);
        }
        let ctx = engine.context_mut();
        for cy in 0..300u64 {
            let roll = splitmix(&mut s);
            match roll % 4 {
                0 => {
                    let _ = ctx.try_send(cy, txs[roll as usize / 4 % plain], cy);
                }
                1 => {
                    let _ = ctx.try_recv(cy, rxs[roll as usize / 4 % plain]);
                }
                2 if bcast > 0 => {
                    let _ = ctx.bcast_try_send(cy, btxs[roll as usize / 4 % bcast], cy);
                }
                _ if bcast > 0 => {
                    let taps = &brxs[roll as usize / 4 % bcast];
                    let _ = ctx.bcast_recv_map(cy, taps[roll as usize / 8 % taps.len()], |&v| v);
                }
                _ => {}
            }
        }
        let stats = ctx.channel_stats();
        let agg = ctx.channel_aggregate();
        assert_eq!(agg.channels, stats.len(), "case {case}");
        assert_eq!(
            agg.pushes,
            stats.iter().map(|c| c.pushes).sum::<u64>(),
            "case {case}"
        );
        assert_eq!(
            agg.pops,
            stats.iter().map(|c| c.pops).sum::<u64>(),
            "case {case}"
        );
        assert_eq!(
            agg.full_stalls,
            stats.iter().map(|c| c.full_stalls).sum::<u64>(),
            "case {case}"
        );
        assert_eq!(
            agg.max_occupancy,
            stats.iter().map(|c| c.max_occupancy).max().unwrap_or(0),
            "case {case}"
        );
    }
}
