//! Clock-frequency model and throughput unit conversions.

/// Linear frequency-vs-utilisation fit with deterministic P&R jitter.
///
/// Quartus closes timing at lower frequencies as the device fills up; a
/// linear fit through Table III's anchor points — (38 % logic, 246 MHz) for
/// `16P` and (60 %, 191 MHz) for `32P` — gives `f = 341 − 250·util`. Real
/// place-&-route adds run-to-run noise (Table III's `16P+2S` at 180 MHz is
/// *slower* than `16P+15S` at 188 MHz); we reproduce that character with a
/// *deterministic* per-configuration jitter of up to ±4 %, seeded by the
/// configuration hash so results never change between runs.
///
/// # Example
///
/// ```
/// use fpga_model::FrequencyModel;
///
/// let f = FrequencyModel::calibrated();
/// let fast = f.frequency_mhz(0.38, 0);
/// let slow = f.frequency_mhz(0.70, 0);
/// assert!(fast > slow);
/// assert_eq!(fast, f.frequency_mhz(0.38, 0)); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyModel {
    /// Zero-utilisation intercept, MHz.
    pub intercept_mhz: f64,
    /// Frequency lost per unit of logic utilisation, MHz.
    pub slope_mhz: f64,
    /// Maximum relative jitter (0.04 = ±4 %).
    pub jitter: f64,
    /// Lower clamp, MHz.
    pub min_mhz: f64,
    /// Upper clamp, MHz.
    pub max_mhz: f64,
}

impl FrequencyModel {
    /// The fit calibrated against Table III (see type-level docs).
    pub fn calibrated() -> Self {
        FrequencyModel {
            intercept_mhz: 341.0,
            slope_mhz: 250.0,
            jitter: 0.04,
            min_mhz: 140.0,
            max_mhz: 280.0,
        }
    }

    /// A noise-free variant (useful in tests that need exact monotonicity).
    pub fn noiseless() -> Self {
        FrequencyModel {
            jitter: 0.0,
            ..Self::calibrated()
        }
    }

    /// Achieved frequency at `logic_util` for the design identified by
    /// `config_hash` (jitter seed).
    pub fn frequency_mhz(&self, logic_util: f64, config_hash: u64) -> f64 {
        let base = self.intercept_mhz - self.slope_mhz * logic_util;
        let unit = ((config_hash >> 17) % 10_000) as f64 / 10_000.0; // [0,1)
        let factor = 1.0 + (unit - 0.5) * 2.0 * self.jitter;
        (base * factor).clamp(self.min_mhz, self.max_mhz)
    }
}

impl Default for FrequencyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Converts a simulated rate in tuples/cycle at `freq_mhz` into million
/// tuples per second — the paper's throughput unit for Figs. 2b and 7.
///
/// # Example
///
/// ```
/// // 8 tuples/cycle at 246 MHz ≈ 1968 MT/s (the paper's uniform HISTO peak
/// // of ~2000 MT/s in Fig. 2b).
/// assert_eq!(fpga_model::mtps(8.0, 246.0), 1968.0);
/// ```
pub fn mtps(tuples_per_cycle: f64, freq_mhz: f64) -> f64 {
    tuples_per_cycle * freq_mhz
}

/// Converts edges/cycle at `freq_mhz` into million traversed edges per
/// second (MTEPS) — Fig. 8's throughput metric. Identical arithmetic to
/// [`mtps`], provided separately for unit clarity.
pub fn mteps(edges_per_cycle: f64, freq_mhz: f64) -> f64 {
    edges_per_cycle * freq_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_passes_through_anchors() {
        let f = FrequencyModel::noiseless();
        assert!((f.frequency_mhz(0.38, 0) - 246.0).abs() < 1.5);
        assert!((f.frequency_mhz(0.60, 0) - 191.0).abs() < 1.5);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let f = FrequencyModel::calibrated();
        for h in 0..1000u64 {
            let v = f.frequency_mhz(0.5, h.wrapping_mul(0x9e3779b97f4a7c15));
            let base = 341.0 - 250.0 * 0.5;
            assert!((v / base - 1.0).abs() <= 0.0401, "hash {h}: {v}");
            assert_eq!(v, f.frequency_mhz(0.5, h.wrapping_mul(0x9e3779b97f4a7c15)));
        }
    }

    #[test]
    fn clamps_apply() {
        let f = FrequencyModel::calibrated();
        assert!(f.frequency_mhz(5.0, 0) >= 140.0);
        assert!(f.frequency_mhz(-5.0, 0) <= 280.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(mtps(1.0, 200.0), 200.0);
        assert_eq!(mteps(0.5, 200.0), 100.0);
    }
}
