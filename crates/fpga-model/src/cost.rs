//! Design-level resource estimation.

use crate::{AppCostProfile, Device, FrequencyModel};

/// The pipeline's shape: the PE counts the Ditto system generator chooses.
///
/// `n_pre` PrePEs (and mapper lanes), `m_pri` PriPEs, `x_sec` SecPEs.
/// Table III's configurations are written `16P`, `32P`, `16P+4S`, … — use
/// [`PipelineShape::label`] to get the same notation.
///
/// # Example
///
/// ```
/// use fpga_model::PipelineShape;
///
/// let s = PipelineShape::new(8, 16, 4);
/// assert_eq!(s.label(), "16P+4S");
/// assert_eq!(s.destination_pes(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineShape {
    /// Number of PrePEs (tuple-preparation lanes), N.
    pub n_pre: u32,
    /// Number of PriPEs, M.
    pub m_pri: u32,
    /// Number of SecPEs, X.
    pub x_sec: u32,
}

impl PipelineShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if `n_pre` or `m_pri` is zero, or if `x_sec >= m_pri` — the
    /// paper bounds X by M−1 ("the implementation with M−1 SecPEs could
    /// handle the worst case where all data go to the same PriPE").
    pub fn new(n_pre: u32, m_pri: u32, x_sec: u32) -> Self {
        assert!(n_pre > 0, "need at least one PrePE");
        assert!(m_pri > 0, "need at least one PriPE");
        assert!(x_sec < m_pri, "X is bounded by M-1 (paper §V-C)");
        PipelineShape {
            n_pre,
            m_pri,
            x_sec,
        }
    }

    /// Total destination PEs (PriPEs + SecPEs).
    pub fn destination_pes(&self) -> u32 {
        self.m_pri + self.x_sec
    }

    /// Table III style label: `16P`, `16P+4S`, …
    pub fn label(&self) -> String {
        if self.x_sec == 0 {
            format!("{}P", self.m_pri)
        } else {
            format!("{}P+{}S", self.m_pri, self.x_sec)
        }
    }

    /// Stable hash of the configuration, used to seed deterministic
    /// place-&-route jitter.
    pub fn config_hash(&self) -> u64 {
        let x =
            (u64::from(self.n_pre) << 42) ^ (u64::from(self.m_pri) << 21) ^ u64::from(self.x_sec);
        // splitmix64-style mixing, inlined to keep this crate dependency-free
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Fixed per-module costs, calibrated against Table III.
///
/// All constants are in device units (ALMs, M20K blocks, DSP blocks).
mod coef {
    /// Static shell (Intel OpenCL board support package), §VI-C1: "the
    /// resource consumption is ... not proportional due to the static
    /// resource consumption of the built-in shell".
    pub const SHELL_RAM: u64 = 240;
    /// Shell logic.
    pub const SHELL_LOGIC: u64 = 52_000;
    /// Shell DSPs.
    pub const SHELL_DSP: u64 = 96;

    /// PrePE FIFO RAM per lane.
    pub const PRE_RAM: u64 = 2;
    /// Mapper table + FIFO RAM per lane.
    pub const MAPPER_RAM: u64 = 2;
    /// Mapper logic per lane (table, counters, round-robin mux).
    pub const MAPPER_LOGIC: u64 = 1_100;

    /// Destination-PE kernel overhead RAM.
    pub const PE_FIXED_RAM: u64 = 4;
    /// Destination-PE datapath logic overhead (decoder + filter).
    pub const PE_FIXED_LOGIC: u64 = 2_000;
    /// Per-PE logic proportional to the wide word width (N slots).
    pub const PE_WIRE_LOGIC_PER_LANE: u64 = 40;

    /// Extra RAM per SecPE (plan tables, drain/result staging).
    pub const SEC_EXTRA_RAM: u64 = 40;
    /// Extra control logic per SecPE.
    pub const SEC_EXTRA_LOGIC: u64 = 1_200;

    /// Runtime profiler — the paper reports it at ~6 % logic, ~8 % DSPs.
    pub const PROFILER_LOGIC: u64 = 10_000;
    /// Profiler DSPs.
    pub const PROFILER_DSP: u64 = 30;
    /// Profiler hist RAM.
    pub const PROFILER_RAM: u64 = 8;
    /// Merger module.
    pub const MERGER_LOGIC: u64 = 2_500;
    /// Merger RAM.
    pub const MERGER_RAM: u64 = 4;
    /// Fixed rescheduling machinery RAM (intermediate-result channels).
    pub const RESCHED_RAM: u64 = 90;

    /// Congestion: above this logic utilisation Quartus starts replicating
    /// RAM for routing/timing; modelled as a superlinear inflation.
    pub const CONGESTION_KNEE: f64 = 0.40;
    /// Congestion strength.
    pub const CONGESTION_GAIN: f64 = 2.5;
}

/// A complete post-"P&R" estimate for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEstimate {
    /// Configuration label (`16P+4S`, …).
    pub label: String,
    /// M20K RAM blocks.
    pub ram_blocks: u64,
    /// Logic, in ALMs.
    pub logic_alms: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Achieved clock frequency, MHz.
    pub freq_mhz: f64,
    /// RAM utilisation fraction.
    pub ram_util: f64,
    /// Logic utilisation fraction.
    pub logic_util: f64,
    /// DSP utilisation fraction.
    pub dsp_util: f64,
}

impl ResourceEstimate {
    /// Formats one Table III row: `label  freq  RAM(..%)  Logic(..%)  DSP(..%)`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<9} {:>4.0} MHz  {:>5} ({:>2.0}%)  {:>7} ({:>2.0}%)  {:>4} ({:>2.0}%)",
            self.label,
            self.freq_mhz,
            self.ram_blocks,
            self.ram_util * 100.0,
            self.logic_alms,
            self.logic_util * 100.0,
            self.dsps,
            self.dsp_util * 100.0,
        )
    }
}

/// Analytical resource/frequency estimator for Ditto-generated designs.
///
/// # Example
///
/// ```
/// use fpga_model::{AppCostProfile, PipelineShape, ResourceModel};
///
/// let model = ResourceModel::arria10();
/// let base = model.estimate(PipelineShape::new(8, 16, 0), &AppCostProfile::hll());
/// let full = model.estimate(PipelineShape::new(8, 16, 15), &AppCostProfile::hll());
/// assert!(full.ram_blocks > base.ram_blocks);    // SecPEs cost BRAM
/// assert!(full.freq_mhz < base.freq_mhz);        // and frequency
/// ```
#[derive(Debug, Clone)]
pub struct ResourceModel {
    device: Device,
    freq: FrequencyModel,
}

impl ResourceModel {
    /// Model for the paper's platform.
    pub fn arria10() -> Self {
        ResourceModel {
            device: Device::arria10_gx1150(),
            freq: FrequencyModel::calibrated(),
        }
    }

    /// Model for a custom device / frequency fit.
    pub fn new(device: Device, freq: FrequencyModel) -> Self {
        ResourceModel { device, freq }
    }

    /// The device being targeted.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Estimates resources and frequency for `shape` running `profile`.
    pub fn estimate(&self, shape: PipelineShape, profile: &AppCostProfile) -> ResourceEstimate {
        let n = u64::from(shape.n_pre);
        let pes = u64::from(shape.destination_pes());
        let x = u64::from(shape.x_sec);
        let has_skew_handling = shape.x_sec > 0;

        let mut logic = coef::SHELL_LOGIC
            + n * profile.pre_logic
            + n * coef::MAPPER_LOGIC
            + pes * (profile.pe_logic + coef::PE_FIXED_LOGIC + coef::PE_WIRE_LOGIC_PER_LANE * n)
            + x * coef::SEC_EXTRA_LOGIC;
        if has_skew_handling {
            logic += coef::PROFILER_LOGIC + coef::MERGER_LOGIC;
        }

        let mut dsp = coef::SHELL_DSP + n * profile.pre_dsp + pes * profile.pe_dsp;
        if has_skew_handling {
            dsp += coef::PROFILER_DSP;
        }

        let mut ram_base = coef::SHELL_RAM
            + n * (coef::PRE_RAM + coef::MAPPER_RAM)
            + pes * (profile.buffer_m20k + n + coef::PE_FIXED_RAM)
            + x * coef::SEC_EXTRA_RAM;
        if has_skew_handling {
            ram_base += coef::PROFILER_RAM + coef::MERGER_RAM + coef::RESCHED_RAM;
        }

        let logic_util = self.device.utilization_logic(logic);
        let over = (logic_util - coef::CONGESTION_KNEE).max(0.0);
        let congestion = 1.0 + coef::CONGESTION_GAIN * over.powf(1.5);
        let ram = (ram_base as f64 * congestion).round() as u64;

        let freq_mhz = self.freq.frequency_mhz(logic_util, shape.config_hash());

        ResourceEstimate {
            label: shape.label(),
            ram_blocks: ram,
            logic_alms: logic,
            dsps: dsp,
            freq_mhz,
            ram_util: self.device.utilization_ram(ram),
            logic_util,
            dsp_util: self.device.utilization_dsp(dsp),
        }
    }

    /// The BRAM usage of the destination-PE buffers alone (no shell, no
    /// routing) — the quantity Table II's "B.U. saving per PE" compares.
    pub fn buffer_ram_blocks(&self, shape: PipelineShape, profile: &AppCostProfile) -> u64 {
        u64::from(shape.destination_pes()) * profile.buffer_m20k
    }
}

impl Default for ResourceModel {
    fn default() -> Self {
        Self::arria10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III of the paper (HLL implementations).
    type PaperRow = (&'static str, u32, u32, u32, f64, u64, u64, u64);

    const TABLE3: &[PaperRow] = &[
        // label, n, m, x, freq, ram, logic, dsp
        ("16P", 8, 16, 0, 246.0, 597, 163_934, 403),
        ("32P", 16, 32, 0, 191.0, 1_868, 230_838, 729),
        ("16P+1S", 8, 16, 1, 202.0, 908, 184_826, 409),
        ("16P+2S", 8, 16, 2, 180.0, 1_021, 203_083, 575),
        ("16P+4S", 8, 16, 4, 192.0, 1_309, 212_856, 587),
        ("16P+8S", 8, 16, 8, 196.0, 1_374, 281_667, 616),
        ("16P+15S", 8, 16, 15, 188.0, 2_129, 230_095, 658),
    ];

    #[test]
    fn tracks_table3_within_model_error() {
        let model = ResourceModel::arria10();
        let hll = AppCostProfile::hll();
        for &(label, n, m, x, freq, ram, logic, dsp) in TABLE3 {
            let est = model.estimate(PipelineShape::new(n, m, x), &hll);
            assert_eq!(est.label, label);
            // Tolerances bound the observed calibration error; the worst
            // cells are the paper's own P&R outliers (16P+2S closes timing
            // at 180 MHz despite 48% utilisation; 16P+8S uses more logic
            // than 16P+15S).
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(
                rel(est.freq_mhz, freq) < 0.32,
                "{label}: freq {} vs {freq}",
                est.freq_mhz
            );
            assert!(
                rel(est.ram_blocks as f64, ram as f64) < 0.30,
                "{label}: ram {} vs {ram}",
                est.ram_blocks
            );
            assert!(
                rel(est.logic_alms as f64, logic as f64) < 0.25,
                "{label}: logic {} vs {logic}",
                est.logic_alms
            );
            assert!(
                rel(est.dsps as f64, dsp as f64) < 0.25,
                "{label}: dsp {} vs {dsp}",
                est.dsps
            );
        }
    }

    #[test]
    fn ram_grows_monotonically_with_secpes() {
        let model = ResourceModel::arria10();
        let hll = AppCostProfile::hll();
        let mut prev = 0;
        for x in [0u32, 1, 2, 4, 8, 15] {
            let est = model.estimate(PipelineShape::new(8, 16, x), &hll);
            assert!(est.ram_blocks > prev, "x={x}: {} !> {prev}", est.ram_blocks);
            prev = est.ram_blocks;
        }
    }

    #[test]
    fn base_config_is_fastest() {
        let model = ResourceModel::arria10();
        let hll = AppCostProfile::hll();
        let base = model.estimate(PipelineShape::new(8, 16, 0), &hll);
        for x in [1u32, 2, 4, 8, 15] {
            let est = model.estimate(PipelineShape::new(8, 16, x), &hll);
            assert!(est.freq_mhz <= base.freq_mhz + 1.0, "x={x}");
        }
    }

    #[test]
    fn profiler_overhead_is_about_6_percent_logic_8_percent_dsp() {
        // §VI-C1: "the runtime profiler module only costs 6% logic and 8% DSPs".
        let model = ResourceModel::arria10();
        let hll = AppCostProfile::hll();
        let base = model.estimate(PipelineShape::new(8, 16, 0), &hll);
        let prof_logic_share = 10_000.0 / base.logic_alms as f64;
        let prof_dsp_share = 30.0 / base.dsps as f64;
        assert!((prof_logic_share - 0.06).abs() < 0.01, "{prof_logic_share}");
        assert!((prof_dsp_share - 0.08).abs() < 0.015, "{prof_dsp_share}");
    }

    #[test]
    fn every_config_fits_the_device() {
        let model = ResourceModel::arria10();
        for profile in AppCostProfile::all() {
            for x in 0..16u32 {
                let est = model.estimate(PipelineShape::new(8, 16, x), &profile);
                assert!(
                    model
                        .device()
                        .fits(est.logic_alms, est.ram_blocks, est.dsps),
                    "{} x={x} does not fit",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn buffer_ram_is_proportional_to_pes() {
        let model = ResourceModel::arria10();
        let hll = AppCostProfile::hll();
        let b16 = model.buffer_ram_blocks(PipelineShape::new(8, 16, 0), &hll);
        let b31 = model.buffer_ram_blocks(PipelineShape::new(8, 16, 15), &hll);
        assert_eq!(b31, b16 * 31 / 16);
    }

    #[test]
    #[should_panic(expected = "bounded by M-1")]
    fn x_bound_enforced() {
        let _ = PipelineShape::new(8, 16, 16);
    }

    #[test]
    fn table_row_formatting() {
        let model = ResourceModel::arria10();
        let est = model.estimate(PipelineShape::new(8, 16, 0), &AppCostProfile::hll());
        let row = est.table_row();
        assert!(row.contains("16P"));
        assert!(row.contains("MHz"));
    }
}
