//! FPGA device capacities.

/// Capacity of one FPGA device, in the units Quartus reports.
///
/// # Example
///
/// ```
/// use fpga_model::Device;
///
/// let dev = Device::arria10_gx1150();
/// assert_eq!(dev.m20k_blocks, 2_713);
/// assert!(dev.utilization_ram(597) > 0.21 && dev.utilization_ram(597) < 0.23);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Adaptive logic modules.
    pub alms: u64,
    /// M20K on-chip RAM blocks.
    pub m20k_blocks: u64,
    /// Hard DSP blocks.
    pub dsp_blocks: u64,
}

impl Device {
    /// The Intel PAC's Arria 10 GX 1150 — the paper's platform (§VI-A1).
    pub fn arria10_gx1150() -> Self {
        Device {
            name: "Intel Arria 10 GX 1150",
            alms: 427_200,
            m20k_blocks: 2_713,
            dsp_blocks: 1_518,
        }
    }

    /// The Arria 10 GX 660 — the mid-range sibling the deployment planner
    /// offers as a cheaper target (≈59 % of the GX 1150's logic).
    pub fn arria10_gx660() -> Self {
        Device {
            name: "Intel Arria 10 GX 660",
            alms: 251_680,
            m20k_blocks: 2_133,
            dsp_blocks: 1_688,
        }
    }

    /// The Stratix 10 GX 2800 — the headroom target for configurations the
    /// Arria 10 rejects (more than 2× its logic and 4× its RAM).
    pub fn stratix10_gx2800() -> Self {
        Device {
            name: "Intel Stratix 10 GX 2800",
            alms: 933_120,
            m20k_blocks: 11_721,
            dsp_blocks: 5_760,
        }
    }

    /// The devices the deployment planner searches over, smallest first.
    pub fn catalog() -> Vec<Device> {
        vec![
            Device::arria10_gx660(),
            Device::arria10_gx1150(),
            Device::stratix10_gx2800(),
        ]
    }

    /// Fraction of ALMs used by `alms` (0.0–1.0+, uncapped).
    pub fn utilization_logic(&self, alms: u64) -> f64 {
        alms as f64 / self.alms as f64
    }

    /// Fraction of M20K blocks used.
    pub fn utilization_ram(&self, blocks: u64) -> f64 {
        blocks as f64 / self.m20k_blocks as f64
    }

    /// Fraction of DSP blocks used.
    pub fn utilization_dsp(&self, dsps: u64) -> f64 {
        dsps as f64 / self.dsp_blocks as f64
    }

    /// `true` if a design with the given usage fits on the device.
    pub fn fits(&self, alms: u64, m20k: u64, dsp: u64) -> bool {
        alms <= self.alms && m20k <= self.m20k_blocks && dsp <= self.dsp_blocks
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::arria10_gx1150()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_utilization_anchors() {
        // Cross-check the device totals against Table III's percentages:
        // 597 RAM = 22%, 163,934 logic = 38%, 403 DSP = 27% for 16P.
        let dev = Device::arria10_gx1150();
        assert!((dev.utilization_ram(597) - 0.22).abs() < 0.01);
        assert!((dev.utilization_logic(163_934) - 0.38).abs() < 0.01);
        assert!((dev.utilization_dsp(403) - 0.27).abs() < 0.01);
        // ...and 16P+15S: 2,129 RAM = 78%, 230,095 logic = 54%, 658 DSP = 43%.
        assert!((dev.utilization_ram(2_129) - 0.78).abs() < 0.01);
        assert!((dev.utilization_logic(230_095) - 0.54).abs() < 0.01);
        assert!((dev.utilization_dsp(658) - 0.43).abs() < 0.01);
    }

    #[test]
    fn catalog_is_ordered_and_distinct() {
        let cat = Device::catalog();
        assert_eq!(cat.len(), 3);
        for pair in cat.windows(2) {
            assert!(pair[0].alms < pair[1].alms, "catalog sorted by capacity");
            assert_ne!(pair[0].name, pair[1].name);
        }
        // The paper's platform is in the catalog.
        assert!(cat.iter().any(|d| *d == Device::arria10_gx1150()));
    }

    #[test]
    fn fits_checks_all_axes() {
        let dev = Device::arria10_gx1150();
        assert!(dev.fits(100, 100, 100));
        assert!(!dev.fits(dev.alms + 1, 0, 0));
        assert!(!dev.fits(0, dev.m20k_blocks + 1, 0));
        assert!(!dev.fits(0, 0, dev.dsp_blocks + 1));
    }
}
