//! # fpga-model — analytical Arria-10 resource & frequency model
//!
//! The paper reports post-place-&-route resource usage and clock frequency
//! for every generated implementation (Table III) and derives throughput in
//! million tuples per second from `tuples/cycle × f_clk`. A Rust
//! reproduction has no Quartus, so this crate substitutes an *analytical*
//! model:
//!
//! * [`Device`] — the Intel PAC's Arria 10 GX 1150 capacity (427 200 ALMs,
//!   2 713 M20K RAM blocks, 1 518 DSP blocks — the paper quotes the same
//!   device as "1,150K logic elements, 65.7 Mb of on-chip memory and 3,036
//!   DSP blocks", counting 18×19 multipliers rather than DSP blocks);
//! * [`ResourceModel`] — per-module cost accounting over a
//!   [`PipelineShape`] (N PrePEs, M PriPEs, X SecPEs) and an
//!   [`AppCostProfile`], with a superlinear congestion term reproducing the
//!   RAM replication Quartus performs at high utilisation;
//! * a linear frequency-vs-utilisation fit with deterministic per-config
//!   jitter standing in for place-&-route noise.
//!
//! Coefficients are calibrated against Table III; `EXPERIMENTS.md` records
//! the per-cell model-vs-paper deltas. Absolute numbers carry the model's
//! error (±≈25 %), but the trends the paper argues from — steep RAM growth
//! with SecPEs, ~20 % frequency degradation at high utilisation, the
//! profiler costing ~6 % logic — are reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod device;
mod frequency;
mod profiles;

pub use cost::{PipelineShape, ResourceEstimate, ResourceModel};
pub use device::Device;
pub use frequency::{mteps, mtps, FrequencyModel};
pub use profiles::AppCostProfile;
