//! Per-application hardware cost profiles.

/// Resource costs of one application's PE logic, used by
/// [`ResourceModel`](crate::ResourceModel) to estimate a full design.
///
/// `buffer_m20k` is the private BRAM buffer each destination PE owns (bins,
/// partitions staging, vertex slice, HLL registers, CMS slice); the `pe_*`
/// fields cost the processing logic replicated per PriPE/SecPE and the
/// `pre_*` fields the tuple-preparation logic replicated per PrePE.
///
/// The HLL profile is calibrated so the full-design estimates track the
/// paper's Table III; the other four applications' profiles are scaled by
/// the relative complexity of their inner loops (hash width, fixed-point
/// multipliers, staging buffers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppCostProfile {
    /// Application name as it appears in reports.
    pub name: &'static str,
    /// Private buffer per destination PE, in M20K blocks.
    pub buffer_m20k: u64,
    /// PriPE/SecPE processing logic, in ALMs.
    pub pe_logic: u64,
    /// PriPE/SecPE DSP blocks.
    pub pe_dsp: u64,
    /// PrePE preparation logic, in ALMs.
    pub pre_logic: u64,
    /// PrePE DSP blocks.
    pub pre_dsp: u64,
}

impl AppCostProfile {
    /// HyperLogLog — murmur3 in the PrePE, max-update register file in the
    /// PE. Calibrated against Table III.
    pub fn hll() -> Self {
        AppCostProfile {
            name: "HLL",
            buffer_m20k: 8,
            pe_logic: 2_306,
            pe_dsp: 9,
            pre_logic: 3_000,
            pre_dsp: 20,
        }
    }

    /// Histogram building — cheap hash, single-increment PE.
    pub fn histo() -> Self {
        AppCostProfile {
            name: "HISTO",
            buffer_m20k: 12,
            pe_logic: 1_800,
            pe_dsp: 4,
            pre_logic: 1_500,
            pre_dsp: 6,
        }
    }

    /// Data partitioning — radix split with per-partition staging buffers.
    pub fn dp() -> Self {
        AppCostProfile {
            name: "DP",
            buffer_m20k: 16,
            pe_logic: 2_600,
            pe_dsp: 2,
            pre_logic: 1_200,
            pre_dsp: 4,
        }
    }

    /// PageRank — fixed-point multiply-accumulate over a vertex slice.
    pub fn pagerank() -> Self {
        AppCostProfile {
            name: "PR",
            buffer_m20k: 20,
            pe_logic: 2_400,
            pe_dsp: 12,
            pre_logic: 2_800,
            pre_dsp: 16,
        }
    }

    /// Heavy-hitter detection — count-min slice plus candidate tracking.
    pub fn hhd() -> Self {
        AppCostProfile {
            name: "HHD",
            buffer_m20k: 14,
            pe_logic: 2_200,
            pe_dsp: 6,
            pre_logic: 2_000,
            pre_dsp: 10,
        }
    }

    /// All five evaluated applications, in Table I order.
    pub fn all() -> Vec<AppCostProfile> {
        vec![
            Self::histo(),
            Self::dp(),
            Self::pagerank(),
            Self::hll(),
            Self::hhd(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_distinct_names() {
        let all = AppCostProfile::all();
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn profiles_are_nonzero() {
        for p in AppCostProfile::all() {
            assert!(
                p.buffer_m20k > 0 && p.pe_logic > 0 && p.pre_logic > 0,
                "{}",
                p.name
            );
        }
    }
}
