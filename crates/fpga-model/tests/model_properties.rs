//! Property tests for the resource/frequency model: the planner trusts the
//! model's *shape* (orderings, convexity, bounds) far more than any single
//! calibrated value, so these pin the shape directly.
//!
//! Four families:
//!
//! 1. **Monotonicity** — growing any shape axis (`n_pre`, `m_pri`,
//!    `x_sec`) never shrinks any resource, for every application profile.
//! 2. **Congestion superlinearity** — the marginal RAM of one more SecPE
//!    is non-decreasing, and strictly grows once logic utilisation crosses
//!    the congestion knee (the reason the planner's budget axis exists).
//! 3. **Frequency degradation** — noiseless frequency is non-increasing in
//!    utilisation, jitter is bounded by ±4 % of the base fit, and every
//!    achieved frequency respects the clamp band.
//! 4. **Capacity rejection** — a shape that overflows a device is reported
//!    as not fitting, with utilisations above 1, rather than silently
//!    clamped.

use fpga_model::{AppCostProfile, Device, FrequencyModel, PipelineShape, ResourceModel};

fn estimate_tuple(model: &ResourceModel, shape: PipelineShape, p: &AppCostProfile) -> [u64; 3] {
    let e = model.estimate(shape, p);
    [e.logic_alms, e.ram_blocks, e.dsps]
}

#[test]
fn resources_are_monotone_in_every_shape_axis() {
    let model = ResourceModel::arria10();
    // Each sweep grows exactly one axis from a mid-space base shape. The
    // start values respect the `x_sec < m_pri` shape invariant.
    type AxisSweep = (&'static str, u32, fn(u32) -> PipelineShape);
    let sweeps: [AxisSweep; 3] = [
        ("n_pre", 1, |v| PipelineShape::new(v, 16, 4)),
        ("m_pri", 5, |v| PipelineShape::new(8, v, 4)),
        ("x_sec", 0, |v| PipelineShape::new(8, 16, v)),
    ];
    for profile in AppCostProfile::all() {
        for (axis, start, shape_of) in &sweeps {
            let mut prev: Option<[u64; 3]> = None;
            for v in *start..=(if *axis == "x_sec" { 15 } else { 32 }) {
                let cur = estimate_tuple(&model, shape_of(v), &profile);
                if let Some(p) = prev {
                    for (k, res) in ["logic", "ram", "dsp"].iter().enumerate() {
                        assert!(
                            cur[k] >= p[k],
                            "{}/{axis}={v}: {res} shrank {} -> {}",
                            profile.name,
                            p[k],
                            cur[k]
                        );
                    }
                }
                prev = Some(cur);
            }
        }
    }
}

#[test]
fn secpe_marginal_ram_is_superlinear_across_the_knee() {
    let model = ResourceModel::arria10();
    let hll = AppCostProfile::hll();
    // RAM cost of each additional SecPE on the paper's 8/16 base. x = 0→1
    // is excluded: it pays the one-time profiler/merger/rescheduler blocks,
    // not a marginal SecPE.
    let ram: Vec<u64> = (1..=15)
        .map(|x| {
            model
                .estimate(PipelineShape::new(8, 16, x), &hll)
                .ram_blocks
        })
        .collect();
    let marginals: Vec<i64> = ram.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
    for (i, pair) in marginals.windows(2).enumerate() {
        // ±1 slack: the estimate rounds the congested RAM to whole blocks.
        assert!(
            pair[1] >= pair[0] - 1,
            "marginal RAM fell from {} to {} at x={}",
            pair[0],
            pair[1],
            i + 2
        );
    }
    // The sweep crosses the knee (~40 % utilisation on the GX 1150), so
    // the congestion term must make the last marginal strictly costlier
    // than the first — superlinearity, not just monotonicity.
    let first = model.estimate(PipelineShape::new(8, 16, 1), &hll);
    let last = model.estimate(PipelineShape::new(8, 16, 15), &hll);
    assert!(first.logic_util < 0.40 + 0.10 && last.logic_util > 0.40);
    assert!(
        marginals[marginals.len() - 1] > marginals[0],
        "congestion never engaged: marginals {marginals:?}"
    );
}

#[test]
fn frequency_degrades_monotonically_and_jitter_is_bounded() {
    let noiseless = FrequencyModel::noiseless();
    let calibrated = FrequencyModel::calibrated();
    let mut prev = f64::INFINITY;
    for step in 0..=100 {
        let util = step as f64 / 100.0;
        let f = noiseless.frequency_mhz(util, 0);
        assert!(f <= prev, "noiseless frequency rose at util {util}");
        assert!(
            (noiseless.min_mhz..=noiseless.max_mhz).contains(&f),
            "frequency {f} outside the clamp band"
        );
        prev = f;
        // Jitter: any design hash stays within ±4 % of the base fit
        // (before clamping) and inside the clamp band (after).
        let base = noiseless.intercept_mhz - noiseless.slope_mhz * util;
        for hash in [0u64, 1 << 17, 0xdead_beef_cafe, u64::MAX] {
            let fj = calibrated.frequency_mhz(util, hash);
            assert!(
                fj >= (base * (1.0 - calibrated.jitter))
                    .clamp(calibrated.min_mhz, calibrated.max_mhz)
                    - 1e-9
                    && fj
                        <= (base * (1.0 + calibrated.jitter))
                            .clamp(calibrated.min_mhz, calibrated.max_mhz)
                            + 1e-9,
                "jitter exceeded ±{:.0}% at util {util}, hash {hash:#x}: {fj} vs base {base}",
                calibrated.jitter * 100.0
            );
        }
    }
    // The degradation is real, not clamped away, over the planner's range.
    assert!(noiseless.frequency_mhz(0.3, 0) > noiseless.frequency_mhz(0.7, 0));
}

#[test]
fn overflowing_shapes_are_rejected_not_clamped() {
    let small = Device::arria10_gx660();
    let model = ResourceModel::new(small.clone(), FrequencyModel::noiseless());
    let oversized = PipelineShape::new(32, 64, 15);
    let est = model.estimate(oversized, &AppCostProfile::pagerank());
    assert!(
        !small.fits(est.logic_alms, est.ram_blocks, est.dsps),
        "a 79-PE PageRank design cannot fit a GX 660"
    );
    assert!(
        est.logic_util > 1.0 || est.ram_util > 1.0 || est.dsp_util > 1.0,
        "overflow must surface as utilisation > 1, got logic {:.2} ram {:.2} dsp {:.2}",
        est.logic_util,
        est.ram_util,
        est.dsp_util
    );
    // The same design fits the largest catalog device — the rescue path
    // the planner's device search relies on.
    let big = Device::stratix10_gx2800();
    let big_est = ResourceModel::new(big.clone(), FrequencyModel::noiseless())
        .estimate(oversized, &AppCostProfile::pagerank());
    assert!(big.fits(big_est.logic_alms, big_est.ram_blocks, big_est.dsps));
    // And the catalog is ordered so that search visits small devices first.
    let caps: Vec<u64> = Device::catalog().iter().map(|d| d.alms).collect();
    assert!(caps.windows(2).all(|w| w[0] < w[1]));
}
