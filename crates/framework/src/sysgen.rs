//! System generation (§V-C): Equation 1 tuning and variant generation.

use ditto_core::ArchConfig;
use fpga_model::{AppCostProfile, PipelineShape, ResourceEstimate, ResourceModel};

use crate::Platform;

/// The Equation 1 result: PE counts forming a balanced pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineTuning {
    /// PrePE count N.
    pub n_pre: u32,
    /// PriPE count M.
    pub m_pri: u32,
}

/// Generates implementations: Equation 1 tuning plus the X = 0..M−1 SecPE
/// variant sweep, each annotated with modelled resources and frequency
/// (standing in for the Intel OpenCL tool-chain's bitstream compilation).
pub struct SystemGenerator;

impl SystemGenerator {
    /// Equation 1: `N_pre / II_pre = N_pri / II_pri = Wmem / Wtuple`.
    ///
    /// The IIs come from HLS synthesis of the developer's PE logic in the
    /// paper; here the [`DittoApp`](ditto_core::DittoApp) reports them.
    ///
    /// # Panics
    ///
    /// Panics if either II is zero.
    pub fn tune(ii_pre: u32, ii_pri: u32, platform: &Platform) -> PipelineTuning {
        assert!(
            ii_pre > 0 && ii_pri > 0,
            "initiation intervals must be nonzero"
        );
        let rate = platform.tuples_per_cycle();
        PipelineTuning {
            n_pre: rate * ii_pre,
            m_pri: rate * ii_pri,
        }
    }

    /// Generates the full variant set: `X = 0..M−1` SecPEs ("the system
    /// then generates M sets of codes with the number of SecPEs ranging
    /// from 0 to M−1", §V-C), with resource estimates.
    pub fn variants(
        tuning: PipelineTuning,
        profile: &AppCostProfile,
        model: &ResourceModel,
    ) -> Vec<(ArchConfig, ResourceEstimate)> {
        (0..tuning.m_pri)
            .map(|x| {
                let config = ArchConfig::new(tuning.n_pre, tuning.m_pri, x);
                let estimate =
                    model.estimate(PipelineShape::new(tuning.n_pre, tuning.m_pri, x), profile);
                (config, estimate)
            })
            .collect()
    }

    /// The subset of variants the paper sweeps in Fig. 7 / Table III:
    /// `{16P, 16P+1S, 16P+2S, 16P+4S, 16P+8S, 16P+15S}` generalised to any
    /// M as `{0, 1, 2, 4, …, M/2, M−1}` SecPEs.
    pub fn paper_sweep_x(m_pri: u32) -> Vec<u32> {
        let mut xs = vec![0u32];
        let mut x = 1;
        while x < m_pri / 2 {
            xs.push(x);
            x *= 2;
        }
        if m_pri >= 2 {
            xs.push(m_pri / 2);
            xs.push(m_pri - 1);
        }
        xs.dedup();
        xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation1_with_paper_numbers() {
        // 8-byte tuples on a 64-byte interface; II_pre = 1, II_pri = 2:
        // "the system sets the number of PriPEs to 16 on our platform".
        let t = SystemGenerator::tune(1, 2, &Platform::intel_pac_a10());
        assert_eq!(t.n_pre, 8);
        assert_eq!(t.m_pri, 16);
    }

    #[test]
    fn equation1_scales_with_tuple_width() {
        let p = Platform::intel_pac_a10().with_tuple_bytes(16);
        let t = SystemGenerator::tune(1, 2, &p);
        assert_eq!(t.n_pre, 4);
        assert_eq!(t.m_pri, 8);
    }

    #[test]
    fn variants_cover_zero_to_m_minus_one() {
        let t = PipelineTuning {
            n_pre: 8,
            m_pri: 16,
        };
        let variants =
            SystemGenerator::variants(t, &AppCostProfile::hll(), &ResourceModel::arria10());
        assert_eq!(variants.len(), 16);
        assert_eq!(variants[0].0.x_sec, 0);
        assert_eq!(variants[15].0.x_sec, 15);
        // Resource estimates grow with X.
        assert!(variants[15].1.ram_blocks > variants[0].1.ram_blocks);
    }

    #[test]
    fn paper_sweep_matches_fig7() {
        assert_eq!(SystemGenerator::paper_sweep_x(16), vec![0, 1, 2, 4, 8, 15]);
    }

    #[test]
    fn paper_sweep_small_m() {
        assert_eq!(SystemGenerator::paper_sweep_x(4), vec![0, 1, 2, 3]);
        assert_eq!(SystemGenerator::paper_sweep_x(2), vec![0, 1]);
    }
}
