//! # ditto-framework — the Ditto workflow (§V)
//!
//! The framework wraps the skew-oblivious architecture of `ditto-core` with
//! the two phases of the paper's Fig. 6:
//!
//! 1. **Implementation generation** — [`SystemGenerator`] tunes the PrePE
//!    and PriPE counts with Equation 1
//!    (`N_pre/II_pre = N_pri/II_pri = Wmem/Wtuple`) for the given
//!    [`Platform`], then generates implementation variants with X = 0..M−1
//!    SecPEs, each with a resource/frequency estimate from `fpga-model`
//!    (standing in for the Intel tool-chain's bitstream compilation).
//! 2. **Implementation selection** — [`SkewAnalyzer`] samples 0.1 % of the
//!    dataset, estimates the per-PriPE workload, applies Equation 2 to
//!    choose the number of SecPEs, and [`select_implementation`] picks the
//!    cheapest generated variant that can absorb the measured skew.
//!
//! # Example
//!
//! ```
//! use ditto_framework::{Platform, SkewAnalyzer, SystemGenerator};
//! use ditto_core::apps::CountPerKey;
//! use datagen::ZipfGenerator;
//!
//! let platform = Platform::intel_pac_a10();
//! let shape = SystemGenerator::tune(1, 2, &platform); // II_pre=1, II_pri=2
//! assert_eq!((shape.n_pre, shape.m_pri), (8, 16));
//!
//! let data = ZipfGenerator::new(3.0, 1 << 20, 1).take_vec(100_000);
//! let app = CountPerKey::new(16);
//! let x = SkewAnalyzer::paper().recommend(&app, &data, 16);
//! assert!(x >= 10); // extreme skew needs most of the M-1 SecPEs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod platform;
mod predictor;
mod select;
mod sysgen;

pub use analyzer::SkewAnalyzer;
pub use platform::Platform;
pub use predictor::StreamSkewPredictor;
pub use select::{select_implementation, Implementation};
pub use sysgen::{PipelineTuning, SystemGenerator};
