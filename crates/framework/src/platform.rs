//! Platform description: memory interface, tuple width, device.

use fpga_model::Device;

/// The deployment platform: memory interface width, tuple width, and the
/// FPGA device the implementations must fit.
///
/// # Example
///
/// ```
/// use ditto_framework::Platform;
///
/// let p = Platform::intel_pac_a10();
/// assert_eq!(p.tuples_per_cycle(), 8); // 64-byte interface, 8-byte tuples
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Memory interface width `Wmem`, bytes per cycle.
    pub wmem_bytes: u32,
    /// Tuple width `Wtuple`, bytes.
    pub wtuple_bytes: u32,
    /// Burst latency of the memory interface, cycles.
    pub burst_latency: u64,
    /// The FPGA device.
    pub device: Device,
}

impl Platform {
    /// The paper's platform: Intel PAC with an Arria 10 GX 1150, 64-byte
    /// (512-bit) memory interface, 8-byte tuples (§VI-A1, §VI-C1).
    pub fn intel_pac_a10() -> Self {
        Platform {
            wmem_bytes: 64,
            wtuple_bytes: 8,
            burst_latency: 16,
            device: Device::arria10_gx1150(),
        }
    }

    /// `Wmem / Wtuple` — tuples the interface supplies per cycle, the
    /// right-hand side of Equation 1.
    ///
    /// # Panics
    ///
    /// Panics if the tuple is wider than the interface.
    pub fn tuples_per_cycle(&self) -> u32 {
        assert!(
            self.wtuple_bytes <= self.wmem_bytes,
            "tuple wider than the memory interface"
        );
        self.wmem_bytes / self.wtuple_bytes
    }

    /// A variant with a different tuple width.
    pub fn with_tuple_bytes(mut self, bytes: u32) -> Self {
        self.wtuple_bytes = bytes;
        self
    }

    /// A Xilinx Alveo U250-class platform — the paper notes the system
    /// "can be migrated to the Xilinx OpenCL tool-chain as well" (§V-A).
    /// Same 512-bit memory interface; a larger device (1.7 M LUTs ≈
    /// 863 k CLBs-as-ALM-equivalents, 2 000 BRAM36 + 1 280 URAM blocks
    /// folded into one on-chip-RAM pool, 12 288 DSPs).
    pub fn xilinx_alveo_u250() -> Self {
        Platform {
            wmem_bytes: 64,
            wtuple_bytes: 8,
            burst_latency: 20,
            device: fpga_model::Device {
                name: "Xilinx Alveo U250",
                alms: 863_000,
                m20k_blocks: 5_280,
                dsp_blocks: 12_288,
            },
        }
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::intel_pac_a10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_feeds_eight_tuples_per_cycle() {
        assert_eq!(Platform::intel_pac_a10().tuples_per_cycle(), 8);
    }

    #[test]
    fn wider_tuples_reduce_rate() {
        let p = Platform::intel_pac_a10().with_tuple_bytes(16);
        assert_eq!(p.tuples_per_cycle(), 4);
    }

    #[test]
    #[should_panic(expected = "wider than the memory interface")]
    fn oversized_tuple_rejected() {
        let _ = Platform::intel_pac_a10()
            .with_tuple_bytes(128)
            .tuples_per_cycle();
    }
}
