//! The skew analyzer (§V-D): Equation 2 over a sampled workload.

use datagen::{sample, Tuple};
use ditto_core::DittoApp;

/// Chooses the number of SecPEs from a random sample of the dataset.
///
/// For offline processing, the analyzer samples a fraction of the dataset
/// (the paper samples 0.1 %, i.e. 256 × 100 points of the 26 M-tuple set),
/// routes the sample through the application's `preprocess` to obtain the
/// per-PriPE workload distribution, and applies Equation 2:
///
/// ```text
/// X = Σ_{i=1..M} ⌈ | M·w_i / Σw − T | ⌉ − M,   clamped to [0, M−1]
/// ```
///
/// where `T` is the tolerance factor ("the performance compromise in terms
/// of percentages"). Uniform data yields X = 0; a single hot PriPE yields
/// X = M−1.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewAnalyzer {
    /// Sampling fraction of the dataset.
    pub sample_fraction: f64,
    /// Tolerance factor T of Equation 2.
    pub tolerance: f64,
    /// Sampling seed (determinism).
    pub seed: u64,
}

impl SkewAnalyzer {
    /// The paper's evaluation settings: 0.1 % sampling, T = 0.01.
    pub fn paper() -> Self {
        SkewAnalyzer {
            sample_fraction: sample::PAPER_SAMPLE_FRACTION,
            tolerance: 0.01,
            seed: 0x5eed,
        }
    }

    /// Creates an analyzer with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sample_fraction` is outside `(0, 1]` or `tolerance` is
    /// negative.
    pub fn new(sample_fraction: f64, tolerance: f64, seed: u64) -> Self {
        assert!(
            sample_fraction > 0.0 && sample_fraction <= 1.0,
            "sample fraction must be in (0, 1]"
        );
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        SkewAnalyzer {
            sample_fraction,
            tolerance,
            seed,
        }
    }

    /// Estimates the per-PriPE workload of `data` by sampling and routing
    /// each sampled tuple through `app.preprocess`.
    pub fn sampled_workloads<A: DittoApp>(&self, app: &A, data: &[Tuple], m_pri: u32) -> Vec<u64> {
        let sampled = sample::sample_fraction(data, self.sample_fraction, self.seed);
        let mut workloads = vec![0u64; m_pri as usize];
        for &t in &sampled {
            let routed = app.preprocess(t, m_pri);
            workloads[routed.dst as usize] += 1;
        }
        workloads
    }

    /// Equation 2 over an explicit workload histogram.
    ///
    /// Each PriPE with normalised share `sᵢ = M·wᵢ/Σw` needs
    /// `⌈sᵢ − T⌉` PEs (itself plus helpers) for its post-sharing load to
    /// stay within the tolerance of the uniform distribution; summing and
    /// subtracting the M PEs that already exist gives X.
    ///
    /// Two engineering guards around the paper's formula, both needed
    /// because the input is a small random sample:
    ///
    /// * every PE contributes at least one term (it cannot need fewer PEs
    ///   than itself), which is what the paper's `|·|` achieves for
    ///   underloaded PEs;
    /// * the effective tolerance is floored at 3σ of the multinomial share
    ///   estimate (`3·√(M/samples)`), so sampling noise on a uniform
    ///   dataset does not masquerade as skew.
    pub fn recommend_from_workloads(&self, workloads: &[u64], m_pri: u32) -> u32 {
        let total: u64 = workloads.iter().sum();
        if total == 0 || m_pri <= 1 {
            return 0;
        }
        let m = f64::from(m_pri);
        let noise_floor = 3.0 * (m / total as f64).sqrt();
        let tol = self.tolerance.max(noise_floor);
        let sum: f64 = workloads
            .iter()
            .map(|&w| {
                let share = m * w as f64 / total as f64;
                (share - tol).ceil().max(1.0)
            })
            .sum();
        let x = sum - m;
        (x.max(0.0) as u32).min(m_pri - 1)
    }

    /// The full §V-D flow: sample, route, apply Equation 2.
    ///
    /// # Example
    ///
    /// ```
    /// use ditto_framework::SkewAnalyzer;
    /// use ditto_core::apps::CountPerKey;
    /// use datagen::UniformGenerator;
    ///
    /// let data = UniformGenerator::new(1 << 20, 2).take_vec(100_000);
    /// let x = SkewAnalyzer::paper().recommend(&CountPerKey::new(16), &data, 16);
    /// assert_eq!(x, 0); // uniform data needs no SecPEs
    /// ```
    pub fn recommend<A: DittoApp>(&self, app: &A, data: &[Tuple], m_pri: u32) -> u32 {
        let workloads = self.sampled_workloads(app, data, m_pri);
        self.recommend_from_workloads(&workloads, m_pri)
    }

    /// The online-processing choice (§V-D): without prior information about
    /// the stream, pick the maximal skew-handling capacity, M−1.
    pub fn recommend_online(&self, m_pri: u32) -> u32 {
        m_pri.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{UniformGenerator, ZipfGenerator};
    use ditto_core::apps::CountPerKey;

    #[test]
    fn equation2_uniform_is_zero() {
        let a = SkewAnalyzer::paper();
        assert_eq!(a.recommend_from_workloads(&[100; 16], 16), 0);
    }

    #[test]
    fn equation2_single_hot_pe_is_m_minus_one() {
        let a = SkewAnalyzer::paper();
        let mut w = vec![0u64; 16];
        w[7] = 10_000;
        assert_eq!(a.recommend_from_workloads(&w, 16), 15);
    }

    #[test]
    fn equation2_mild_skew_is_intermediate() {
        let a = SkewAnalyzer::paper();
        // One PE at 3x the fair share.
        let mut w = vec![100u64; 16];
        w[3] = 300;
        let x = a.recommend_from_workloads(&w, 16);
        assert!((1..15).contains(&x), "x = {x}");
    }

    #[test]
    fn equation2_empty_sample_is_zero() {
        let a = SkewAnalyzer::paper();
        assert_eq!(a.recommend_from_workloads(&[0; 16], 16), 0);
    }

    #[test]
    fn recommendation_monotone_in_alpha() {
        let app = CountPerKey::new(16);
        let a = SkewAnalyzer::new(0.05, 0.01, 7);
        let mut prev = 0;
        for &alpha in &[0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let data = ZipfGenerator::new(alpha, 1 << 18, 5).take_vec(50_000);
            let x = a.recommend(&app, &data, 16);
            assert!(
                x + 2 >= prev,
                "recommendation should not drop sharply: α={alpha} x={x} prev={prev}"
            );
            prev = prev.max(x);
        }
        assert!(prev >= 12, "extreme skew must need most SecPEs, got {prev}");
    }

    #[test]
    fn single_hot_key_needs_m_minus_one() {
        // The worst case of §V-C: every tuple goes to the same PriPE.
        let a = SkewAnalyzer::new(0.05, 0.01, 7);
        let data = vec![datagen::Tuple::from_key(42); 100_000];
        let app = CountPerKey::new(16);
        assert_eq!(a.recommend(&app, &data, 16), 15);
    }

    #[test]
    fn uniform_data_needs_nothing() {
        let app = CountPerKey::new(16);
        let data = UniformGenerator::new(1 << 20, 3).take_vec(100_000);
        assert_eq!(SkewAnalyzer::paper().recommend(&app, &data, 16), 0);
    }

    #[test]
    fn online_recommendation_is_maximal() {
        assert_eq!(SkewAnalyzer::paper().recommend_online(16), 15);
        assert_eq!(SkewAnalyzer::paper().recommend_online(1), 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let app = CountPerKey::new(8);
        let data = ZipfGenerator::new(1.5, 1 << 16, 4).take_vec(30_000);
        let a = SkewAnalyzer::paper();
        assert_eq!(a.recommend(&app, &data, 8), a.recommend(&app, &data, 8));
    }
}
