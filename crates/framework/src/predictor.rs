//! Stream skew prediction for online implementation selection.
//!
//! §V-D closes with future work: "There are a number of works on predicting
//! the future input of stream processing [16], which can be explored for
//! choosing an implementation that saves more BRAM usage for online
//! processing" — instead of always provisioning the maximal M−1 SecPEs.
//! This module implements that extension: an exponentially-weighted
//! predictor over the per-window Equation 2 recommendation, with a safety
//! margin, so a stream that has been mildly skewed for a while can be
//! served by a smaller (cheaper) implementation.

use crate::SkewAnalyzer;

/// EWMA-based predictor of the SecPE requirement of a stream.
///
/// Feed it one workload histogram per observation window (e.g. per
/// profiling window); it recommends the number of SecPEs to provision for
/// the *next* window as `ceil(ewma + margin·σ)`, clamped to `[0, M−1]`.
///
/// # Example
///
/// ```
/// use ditto_framework::StreamSkewPredictor;
///
/// let mut p = StreamSkewPredictor::new(16, 0.3, 1.0);
/// // A stream that keeps needing ~4 SecPEs...
/// for _ in 0..20 {
///     let mut w = vec![100u64; 16];
///     w[3] = 900; // one PE at ~5x fair share
///     p.observe_workloads(&w);
/// }
/// let x = p.predict();
/// assert!(x >= 4 && x < 15, "prediction {x} should track the stream, not max out");
/// ```
#[derive(Debug, Clone)]
pub struct StreamSkewPredictor {
    m_pri: u32,
    /// EWMA smoothing factor in (0, 1]; higher = more reactive.
    alpha: f64,
    /// Safety margin in standard deviations.
    margin_sigmas: f64,
    analyzer: SkewAnalyzer,
    ewma: Option<f64>,
    /// EWMA of the squared deviation (for the variance estimate).
    ewvar: f64,
    observations: u64,
}

impl StreamSkewPredictor {
    /// Creates a predictor for an `m_pri`-PriPE pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1` and `margin_sigmas >= 0`.
    pub fn new(m_pri: u32, alpha: f64, margin_sigmas: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(margin_sigmas >= 0.0, "margin must be non-negative");
        StreamSkewPredictor {
            m_pri,
            alpha,
            margin_sigmas,
            analyzer: SkewAnalyzer::new(1.0, 0.01, 0),
            ewma: None,
            ewvar: 0.0,
            observations: 0,
        }
    }

    /// Observes one window's per-PriPE workload histogram.
    pub fn observe_workloads(&mut self, workloads: &[u64]) {
        let x = f64::from(
            self.analyzer
                .recommend_from_workloads(workloads, self.m_pri),
        );
        self.observe_requirement(x);
    }

    /// Observes a directly-measured SecPE requirement.
    pub fn observe_requirement(&mut self, x: f64) {
        self.observations += 1;
        match self.ewma {
            None => self.ewma = Some(x),
            Some(prev) => {
                let next = prev + self.alpha * (x - prev);
                self.ewvar =
                    (1.0 - self.alpha) * (self.ewvar + self.alpha * (x - prev) * (x - prev));
                self.ewma = Some(next);
            }
        }
    }

    /// Number of observations so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Predicts the SecPE count to provision for the next window.
    ///
    /// With no observations this falls back to the paper's online default,
    /// the maximal M−1 ("the skew analyzer currently chooses the
    /// implementation with the maximal number of SecPEs").
    pub fn predict(&self) -> u32 {
        match self.ewma {
            None => self.m_pri.saturating_sub(1),
            Some(mean) => {
                let x = mean + self.margin_sigmas * self.ewvar.sqrt();
                (x.ceil().max(0.0) as u32).min(self.m_pri.saturating_sub(1))
            }
        }
    }

    /// BRAM fraction saved versus the always-maximal online default:
    /// `1 − (M + X̂) / (2M − 1)` of the destination-PE buffer pool.
    pub fn bram_saving_vs_max(&self) -> f64 {
        let max_pes = f64::from(2 * self.m_pri - 1);
        let ours = f64::from(self.m_pri + self.predict());
        1.0 - ours / max_pes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_is_conservative() {
        let p = StreamSkewPredictor::new(16, 0.3, 1.0);
        assert_eq!(p.predict(), 15, "no data: provision the paper's maximal X");
    }

    #[test]
    fn steady_uniform_stream_releases_secpes() {
        let mut p = StreamSkewPredictor::new(16, 0.3, 1.0);
        for _ in 0..50 {
            p.observe_workloads(&[500u64; 16]);
        }
        assert_eq!(p.predict(), 0);
        assert!(p.bram_saving_vs_max() > 0.4, "{}", p.bram_saving_vs_max());
    }

    #[test]
    fn hot_stream_keeps_maximal_provisioning() {
        let mut p = StreamSkewPredictor::new(16, 0.3, 1.0);
        let mut w = vec![0u64; 16];
        w[9] = 100_000;
        for _ in 0..20 {
            p.observe_workloads(&w);
        }
        assert_eq!(p.predict(), 15);
        assert!(p.bram_saving_vs_max().abs() < 1e-9);
    }

    #[test]
    fn margin_covers_variability() {
        // Alternating mild/heavy windows: prediction must cover the heavy
        // ones, not just the mean.
        let mut tight = StreamSkewPredictor::new(16, 0.5, 0.0);
        let mut safe = StreamSkewPredictor::new(16, 0.5, 2.0);
        for i in 0..40 {
            let x = if i % 2 == 0 { 2.0 } else { 10.0 };
            tight.observe_requirement(x);
            safe.observe_requirement(x);
        }
        assert!(safe.predict() > tight.predict());
        assert!(
            safe.predict() >= 10,
            "safe predictor must cover the heavy windows"
        );
    }

    #[test]
    fn reacts_to_regime_change() {
        let mut p = StreamSkewPredictor::new(16, 0.4, 1.0);
        for _ in 0..30 {
            p.observe_requirement(1.0);
        }
        let before = p.predict();
        for _ in 0..30 {
            p.observe_requirement(12.0);
        }
        let after = p.predict();
        assert!(before <= 3, "{before}");
        assert!(after >= 11, "{after}");
    }

    #[test]
    fn observation_count_tracks() {
        let mut p = StreamSkewPredictor::new(8, 0.3, 1.0);
        p.observe_requirement(3.0);
        p.observe_requirement(4.0);
        assert_eq!(p.observations(), 2);
    }
}
