//! Implementation selection (Fig. 6 phase 2).

use datagen::Tuple;
use ditto_core::{ArchConfig, DittoApp};
use fpga_model::{AppCostProfile, ResourceEstimate, ResourceModel};

use crate::{Platform, SkewAnalyzer, SystemGenerator};

/// A selected implementation: the architecture configuration plus its
/// modelled resources and frequency (the "suitable bitstream" of Fig. 6).
#[derive(Debug, Clone)]
pub struct Implementation {
    /// The architecture configuration to run.
    pub config: ArchConfig,
    /// Modelled post-P&R resources and clock.
    pub estimate: ResourceEstimate,
    /// The SecPE count Equation 2 recommended (the chosen variant's X may
    /// be the next generated size up).
    pub recommended_x: u32,
}

/// Runs the full Ditto workflow for one application and dataset: Equation 1
/// tuning, variant generation, skew analysis, and selection of the variant
/// that "saves the BRAM usage without significantly compromising the
/// performance" — the smallest X ≥ the Equation 2 recommendation.
///
/// # Example
///
/// ```
/// use ditto_framework::{select_implementation, Platform, SkewAnalyzer};
/// use ditto_core::apps::CountPerKey;
/// use fpga_model::AppCostProfile;
/// use datagen::ZipfGenerator;
///
/// let data = ZipfGenerator::new(0.0, 1 << 20, 9).take_vec(50_000);
/// let app = CountPerKey::new(16);
/// let imp = select_implementation(
///     &app,
///     &data,
///     &Platform::intel_pac_a10(),
///     &AppCostProfile::histo(),
///     &SkewAnalyzer::paper(),
/// );
/// assert_eq!(imp.config.x_sec, 0); // uniform data: cheapest variant
/// ```
pub fn select_implementation<A: DittoApp>(
    app: &A,
    data: &[Tuple],
    platform: &Platform,
    profile: &AppCostProfile,
    analyzer: &SkewAnalyzer,
) -> Implementation {
    let tuning = SystemGenerator::tune(app.ii_pre(), app.ii_pri(), platform);
    let model = ResourceModel::new(
        platform.device.clone(),
        fpga_model::FrequencyModel::calibrated(),
    );
    let variants = SystemGenerator::variants(tuning, profile, &model);
    let recommended_x = analyzer.recommend(app, data, tuning.m_pri);
    let (config, estimate) = variants
        .into_iter()
        .find(|(c, _)| c.x_sec >= recommended_x)
        .expect("variant list covers 0..M-1, recommendation is clamped to M-1");
    Implementation {
        config,
        estimate,
        recommended_x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::ZipfGenerator;
    use ditto_core::apps::CountPerKey;

    fn select_for(alpha: f64) -> Implementation {
        let data = ZipfGenerator::new(alpha, 1 << 18, 21).take_vec(60_000);
        let app = CountPerKey::new(16);
        select_implementation(
            &app,
            &data,
            &Platform::intel_pac_a10(),
            &AppCostProfile::histo(),
            &SkewAnalyzer::paper(),
        )
    }

    #[test]
    fn uniform_selects_base() {
        let imp = select_for(0.0);
        assert_eq!(imp.config.x_sec, 0);
        assert_eq!(imp.recommended_x, 0);
    }

    #[test]
    fn extreme_skew_selects_nearly_full() {
        let imp = select_for(3.0);
        // α = 3 concentrates ~83% of tuples on one PriPE; Equation 2 asks
        // for most of the M-1 SecPEs (the all-one-key worst case asks for
        // exactly M-1).
        assert!(imp.config.x_sec >= 10, "x = {}", imp.config.x_sec);
    }

    #[test]
    fn selection_never_underprovisions() {
        for &alpha in &[0.0, 0.75, 1.25, 2.0, 3.0] {
            let imp = select_for(alpha);
            assert!(
                imp.config.x_sec >= imp.recommended_x,
                "α={alpha}: x {} < recommended {}",
                imp.config.x_sec,
                imp.recommended_x
            );
        }
    }

    #[test]
    fn bram_grows_with_selected_x() {
        let base = select_for(0.0);
        let full = select_for(3.0);
        assert!(full.estimate.ram_blocks > base.estimate.ram_blocks);
    }
}
